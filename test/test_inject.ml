(* Fault injection (lib/inject): robustness semantics against the
   differential oracle.

   The QCheck/corpus properties pin the three contracts the subsystem
   is built on, on BOTH steppers:

   (a) a zero-fault plan is bit-identical to a plain [Pipeline.run] —
       state, stats and event stream;
   (b) the same (seed, spec) replays to byte-identical campaign
       verdicts and the campaign is a pure function of the spec —
       bit-identical across fleet domain counts;
   (c) every applied injection appears exactly once in the run's
       event stream.

   The directed cases cover the awkward boundaries: a transient flip
   landing in a load-use stall or on the same cycle as a branch flush
   (swept over every cycle of a program that has both), a spurious
   interrupt raised inside the menter→mexit window (Metal mode is
   non-interruptible — delivery must wait for mexit), the
   mverify-style integrity trip, and the predecode-coherence
   regression: flipping an MRAM code word the predecode cache has
   already decoded must never be masked by a stale cached decode. *)

open Metal_cpu
module System = Metal_core.System
module Inject = Metal_inject.Inject
module Collector = Metal_trace.Collector
module Ring = Metal_trace.Ring

let mem_size = 64 * 1024
let data_base = 0x1000
let data_words = 64
let base_reg = 28

let config_of ~predecode =
  { Config.default with Config.mem_size; Config.predecode }

let oracle_name predecode = if predecode then "fast" else "slow"

(* ------------------------------------------------------------------ *)
(* Random-program corpus (same shape as test_differential's: ALU ops,
   loads/stores into a seeded data region, forward branches). *)

let gen_reg = QCheck.Gen.int_range 0 15

let gen_instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Instr in
  let gen_alu = oneofl [ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And ] in
  let gen_cond = oneofl [ Beq; Bne; Blt; Bge; Bltu; Bgeu ] in
  let word_off = map (fun i -> 4 * i) (int_range 0 (data_words - 1)) in
  frequency
    [ (4, map3 (fun op (rd, rs1) rs2 -> Op { op; rd; rs1; rs2 }) gen_alu
         (pair gen_reg gen_reg) gen_reg);
      (4, map3 (fun op (rd, rs1) imm -> Op_imm { op; rd; rs1; imm })
         (oneofl [ Add; Xor; Or; And ]) (pair gen_reg gen_reg)
         (int_range (-2048) 2047));
      (3, map2 (fun rd offset ->
           Load { width = Word; unsigned = false; rd; rs1 = base_reg; offset })
         gen_reg word_off);
      (3, map2 (fun rs2 offset ->
           Store { width = Word; rs2; rs1 = base_reg; offset })
         gen_reg word_off);
      (2, map3 (fun cond rs1 rs2 -> Branch { cond; rs1; rs2; offset = 8 })
         gen_cond gen_reg gen_reg);
    ]

let gen_program : Instr.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let* body = list_size (int_range 5 40) gen_instr in
  let* seeds = list_size (return 6) (pair gen_reg (int_range (-100) 1000)) in
  let prologue =
    Instr.Lui { rd = base_reg; imm = data_base lsr 12 }
    :: List.concat_map
         (fun (r, v) ->
            if r = 0 then []
            else [ Instr.Op_imm { op = Instr.Add; rd = r; rs1 = 0; imm = v } ])
         seeds
  in
  return (prologue @ body @ [ Instr.Ebreak ])

let corpus_programs =
  lazy
    (let rand = Random.State.make [| 0x1417; 300 |] in
     Array.init 300 (fun _ -> QCheck.Gen.generate1 ~rand gen_program))

let image_of instrs =
  let b = Metal_asm.Image.Builder.create () in
  List.iteri
    (fun i instr ->
       match
         Metal_asm.Image.Builder.emit_word b ~addr:(4 * i)
           (Encode.encode_exn instr)
       with
       | Ok () -> ()
       | Error e -> failwith e)
    instrs;
  Metal_asm.Image.Builder.finish b

let seed_data write =
  for i = 0 to data_words - 1 do
    write (data_base + (4 * i)) (Word.of_int ((i * 0x01234567) + 0x89ABCDEF))
  done

let prepare_image img (sys : System.t) =
  let m = sys.System.machine in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  seed_data (Machine.write_word m);
  Machine.set_pc m 0

(* ------------------------------------------------------------------ *)
(* (a) Zero-fault plan == plain Pipeline.run, bit for bit.            *)

let observe ~predecode ~runner img =
  let sys = System.create ~config:(config_of ~predecode) () in
  prepare_image img sys;
  let m = sys.System.machine in
  let c = Collector.create () in
  Machine.set_probe m (Collector.probe c);
  let halt = runner m in
  ( halt,
    Array.init 32 (Machine.get_reg m),
    Metal_hw.Mregs.dump m.Machine.mregs,
    Stats.copy m.Machine.stats,
    Ring.to_list (Collector.ring c) )

let zero_fault_divergence ~predecode instrs =
  let img = image_of instrs in
  let plain =
    observe ~predecode ~runner:(fun m -> Pipeline.run m ~max_cycles:100_000)
      img
  in
  let injected =
    observe ~predecode
      ~runner:(fun m ->
          match Inject.run_plan m ~fuel:100_000 ~plan:[] with
          | Inject.Halted h, 0 -> Some h
          | (Inject.Fuel_exhausted | Inject.Integrity_trip _), 0 -> None
          | _, n -> failwith (Printf.sprintf "empty plan applied %d faults" n))
      img
  in
  if plain = injected then None
  else Some (`State "zero-fault run_plan diverges from Pipeline.run")

let test_zero_fault_corpus ~predecode () =
  let progs = Lazy.force corpus_programs in
  let failures = ref [] in
  Array.iteri
    (fun i instrs ->
       match zero_fault_divergence ~predecode instrs with
       | None -> ()
       | Some (`State msg) ->
         failures := Printf.sprintf "corpus[%d]: %s" i msg :: !failures)
    progs;
  match !failures with
  | [] -> ()
  | fs ->
    Alcotest.fail
      (Printf.sprintf "%d/300 corpus programs diverge:\n%s" (List.length fs)
         (String.concat "\n" (List.rev fs)))

(* ------------------------------------------------------------------ *)
(* (b) + (c) Campaign determinism: same spec -> byte-identical JSON,
   across replays and fleet domain counts; every record's event count
   equals its applied count. *)

let corpus_workload ~predecode i img =
  Inject.workload ~config:(config_of ~predecode) ~fuel:200_000
    ~label:(Printf.sprintf "corpus-%d-%s" i (oracle_name predecode))
    (prepare_image img)

let campaign_exn ?domains ~spec w =
  match Inject.run_campaign ?domains ~spec w with
  | Ok c -> c
  | Error e -> Alcotest.fail ("campaign failed: " ^ e)

let test_campaign_determinism ~predecode () =
  let progs = Lazy.force corpus_programs in
  let spec = { Inject.default_spec with Inject.runs = 6; Inject.seed = 42 } in
  for i = 0 to 19 do
    let w = corpus_workload ~predecode i (image_of progs.(i)) in
    let c1 = campaign_exn ~domains:1 ~spec w in
    let c4 = campaign_exn ~domains:4 ~spec w in
    let c1' = campaign_exn ~domains:1 ~spec w in
    let j1 = Inject.to_json c1 in
    if j1 <> Inject.to_json c4 then
      Alcotest.failf "corpus[%d]: verdicts differ between 1 and 4 domains" i;
    if j1 <> Inject.to_json c1' then
      Alcotest.failf "corpus[%d]: replay with the same spec diverges" i;
    Array.iter
      (fun r ->
         if r.Inject.events <> r.Inject.applied then
           Alcotest.failf
             "corpus[%d] run %d: %d inject events for %d applied faults" i
             r.Inject.index r.Inject.events r.Inject.applied)
      c1.Inject.records
  done

(* ------------------------------------------------------------------ *)
(* Directed: transient flip swept over every cycle of a program with a
   load-use stall and a taken-branch flush.  Every boundary must
   classify deterministically (same verdict on replay), and flipping
   the word the load reads must be visible at least once. *)

let stall_flush_program =
  [ Instr.Lui { rd = base_reg; imm = data_base lsr 12 };
    Instr.Load
      { width = Instr.Word; unsigned = false; rd = 6; rs1 = base_reg;
        offset = 0 };
    Instr.Op { op = Instr.Add; rd = 7; rs1 = 6; rs2 = 6 };  (* load-use *)
    Instr.Branch { cond = Instr.Beq; rs1 = 0; rs2 = 0; offset = 8 };
    Instr.Op { op = Instr.Add; rd = 8; rs1 = 8; rs2 = 8 };  (* flushed *)
    Instr.Store { width = Instr.Word; rs2 = 7; rs1 = base_reg; offset = 4 };
    Instr.Ebreak ]

let test_transient_sweep ~predecode () =
  let img = image_of stall_flush_program in
  let config = config_of ~predecode in
  let prepare = prepare_image img in
  let _, _, _, oracle, _ =
    Tutil.run_injected ~config ~fuel:10_000 ~plan:[] prepare
  in
  let cycles = oracle.Inject.Snapshot.stats.Stats.cycles in
  Alcotest.(check bool) "oracle halted" true (cycles > 0);
  (* The last trigger boundary is [cycles - 1]: the halting step runs
     between it and the final cycle count. *)
  let non_masked = ref 0 in
  for k = 1 to cycles - 1 do
    let plan =
      [ { Inject.trigger = Inject.At_cycle k;
          Inject.fault = Inject.Load { addr = data_base; bit = 3 } } ]
    in
    let verdict, applied, _, _, _ =
      Tutil.run_injected ~config ~fuel:10_000 ~plan prepare
    in
    let verdict', applied', _, _, _ =
      Tutil.run_injected ~config ~fuel:10_000 ~plan prepare
    in
    if
      Inject.verdict_to_string verdict <> Inject.verdict_to_string verdict'
      || Inject.verdict_detail verdict <> Inject.verdict_detail verdict'
      || applied <> applied'
    then Alcotest.failf "cycle %d: replay diverges" k;
    Alcotest.(check int) (Printf.sprintf "cycle %d applied" k) 1 applied;
    match verdict with Inject.Masked -> () | _ -> incr non_masked
  done;
  Alcotest.(check bool) "some cycle observes the transient flip" true
    (!non_masked > 0)

(* ------------------------------------------------------------------ *)
(* The ping workload: a guest looping over [menter 1] 200 times, with
   an interrupt handler mroutine available as entry 2. *)

let ping_mcode =
  ".mentry 1, ping\n\
   .mentry 2, irqh\n\
   ping:\n\
   wmr m11, t0\n\
   rmr t0, m10\n\
   addi t0, t0, 1\n\
   wmr m10, t0\n\
   rmr t0, m11\n\
   mexit\n\
   irqh:\n\
   wmr m20, t6\n\
   li t6, 8\n\
   mcsrw int_pending, t6\n\
   rmr t6, m20\n\
   mexit\n"

let ping_guest =
  "start:\n\
   li s0, 200\n\
   loop:\n\
   menter 1\n\
   addi s0, s0, -1\n\
   bne s0, zero, loop\n\
   ebreak\n"

let prepare_ping ?(irq = None) (sys : System.t) =
  (match System.load_mcode sys ping_mcode with
   | Ok () -> ()
   | Error e -> failwith e);
  (match System.load_program sys ping_guest with
   | Ok _ -> ()
   | Error e -> failwith e);
  let m = sys.System.machine in
  (match irq with
   | None -> ()
   | Some irq ->
     Machine.install_interrupt_handler m ~irq ~entry:2;
     Machine.ctrl_write m Csr.int_enable (1 lsl irq));
  System.start sys ~pc:0 ()

(* A spurious interrupt raised at a Metal-mode boundary: the pipeline
   must hold delivery until after mexit (Metal mode is
   non-interruptible), so the run completes normally and the only
   architectural divergence is the Metal-register state the delivery
   wrote (return address / cause / ping scratch) — never a Metal-mode
   fault, never a guest GPR difference. *)
let test_irq_in_metal_window ~predecode () =
  let config = config_of ~predecode in
  let prepare = prepare_ping ~irq:(Some 3) in
  let plan =
    [ { Inject.trigger = Inject.At_metal_cycle 50;
        Inject.fault = Inject.Irq_raise { irq = 3 } } ]
  in
  let run () = Tutil.run_injected ~config ~fuel:100_000 ~plan prepare in
  let verdict, applied, stop, _, snap = run () in
  let verdict', _, _, _, _ = run () in
  Alcotest.(check int) "applied" 1 applied;
  Alcotest.(check string) "deterministic replay"
    (Inject.verdict_to_string verdict ^ "/" ^ Inject.verdict_detail verdict)
    (Inject.verdict_to_string verdict' ^ "/" ^ Inject.verdict_detail verdict');
  (match stop with
   | Inject.Halted (Machine.Halt_ebreak _) -> ()
   | s ->
     Alcotest.failf "run did not reach ebreak: %s"
       (match s with
        | Inject.Halted h -> Machine.halted_to_string h
        | Inject.Fuel_exhausted -> "fuel exhausted"
        | Inject.Integrity_trip _ -> "integrity trip"));
  (match verdict with
   | Inject.Silent components ->
     List.iter
       (fun c ->
          if not (Tutil.contains c "mreg") then
            Alcotest.failf
              "divergence beyond Metal registers: %s (delivery leaked into \
               the guest?)"
              c)
       components
   | Inject.Masked -> ()
   | Inject.Corrected _ ->
     Alcotest.fail "corrected verdict without ECC armed"
   | Inject.Detected _ ->
     Alcotest.fail "spurious irq was misclassified as a detected fault");
  (* The handler really ran: the delivery wrote Metal registers the
     oracle never touched. *)
  Alcotest.(check bool) "handler delivery visible in mregs" true
    (verdict <> Inject.Masked);
  ignore snap

(* ------------------------------------------------------------------ *)
(* The mverify-style integrity re-check: corrupt MRAM code from a
   normal-mode boundary with integrity armed; the next menter must
   trip Detected/Integrity_menter before the corrupted mroutine
   retires. *)
let test_integrity_trip ~predecode () =
  let config = config_of ~predecode in
  let prepare = prepare_ping ~irq:None in
  let plan =
    [ { Inject.trigger = Inject.At_user_cycle 100;
        Inject.fault = Inject.Mram_code { word = 2; bit = 20 } } ]
  in
  let verdict, applied, stop, _, _ =
    Tutil.run_injected ~config ~integrity:true ~fuel:100_000 ~plan prepare
  in
  Alcotest.(check int) "applied" 1 applied;
  (match stop with
   | Inject.Integrity_trip _ -> ()
   | _ -> Alcotest.fail "integrity check did not trip on menter");
  match verdict with
  | Inject.Detected Inject.Integrity_menter -> ()
  | v ->
    Alcotest.failf "expected Detected/Integrity_menter, got %s (%s)"
      (Inject.verdict_to_string v) (Inject.verdict_detail v)

(* ------------------------------------------------------------------ *)
(* Predecode coherence regression: by cycle 100 the ping mroutine's
   words are hot in the predecode cache.  Flipping any bit of word 2
   (the [addi]) must behave identically on the fast stepper and the
   predecode-free slow oracle — if the fast stepper served a stale
   cached decode of the pre-fault word, it would mask a flip the slow
   stepper observes.  Integrity is OFF so nothing hides the
   divergence. *)
let test_predecode_coherence () =
  let prepare = prepare_ping ~irq:None in
  let non_masked = ref 0 in
  for bit = 0 to 31 do
    let plan =
      [ { Inject.trigger = Inject.At_user_cycle 100;
          Inject.fault = Inject.Mram_code { word = 2; bit } } ]
    in
    let describe (verdict, applied, _, _, _) =
      Printf.sprintf "%s applied=%d [%s]"
        (Inject.verdict_to_string verdict)
        applied
        (Inject.verdict_detail verdict)
    in
    let fast =
      Tutil.run_injected ~config:(config_of ~predecode:true) ~fuel:100_000
        ~plan prepare
    in
    let slow =
      Tutil.run_injected ~config:(config_of ~predecode:false) ~fuel:100_000
        ~plan prepare
    in
    if describe fast <> describe slow then
      Alcotest.failf
        "word 2 bit %d: fast stepper %s vs slow oracle %s — stale predecode?"
        bit (describe fast) (describe slow);
    (match fast with
     | Inject.Masked, _, _, _, _ -> ()
     | _ -> incr non_masked)
  done;
  Alcotest.(check bool) "some bit flip is architecturally visible" true
    (!non_masked > 0)

(* ------------------------------------------------------------------ *)
(* PRNG and spec parsing units. *)

let test_prng_determinism () =
  let a = Inject.Prng.create ~seed:7 ~stream:3 in
  let b = Inject.Prng.create ~seed:7 ~stream:3 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream replays" (Inject.Prng.next a)
      (Inject.Prng.next b)
  done;
  let c = Inject.Prng.create ~seed:7 ~stream:4 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Inject.Prng.next a <> Inject.Prng.next c then differs := true
  done;
  Alcotest.(check bool) "streams are independent" true !differs;
  let d = Inject.Prng.create ~seed:1 ~stream:0 in
  for _ = 1 to 1000 do
    let n = Inject.Prng.int d ~bound:7 in
    if n < 0 || n >= 7 then Alcotest.failf "int out of bounds: %d" n
  done

let test_spec_parsing () =
  (match Inject.spec_of_string "seed:7,runs:3,classes:mreg+load,no-integrity,user-only" with
   | Ok s ->
     Alcotest.(check int) "seed" 7 s.Inject.seed;
     Alcotest.(check int) "runs" 3 s.Inject.runs;
     Alcotest.(check (list string)) "classes" [ "mreg"; "load" ]
       (List.map Inject.class_to_string s.Inject.classes);
     Alcotest.(check bool) "integrity" false s.Inject.integrity;
     Alcotest.(check bool) "user_only" true s.Inject.user_only
   | Error e -> Alcotest.fail e);
  (match Inject.spec_of_string (Inject.spec_to_string Inject.default_spec) with
   | Ok s ->
     Alcotest.(check string) "round trip"
       (Inject.spec_to_string Inject.default_spec)
       (Inject.spec_to_string s)
   | Error e -> Alcotest.fail e);
  (match Inject.spec_of_string "classes:bogus" with
   | Ok _ -> Alcotest.fail "bogus class accepted"
   | Error e ->
     Alcotest.(check bool) "error lists valid classes" true
       (Tutil.contains e "valid:" && Tutil.contains e "mram-code"));
  (match Inject.spec_of_string "frobnicate:9" with
   | Ok _ -> Alcotest.fail "unknown key accepted"
   | Error e ->
     Alcotest.(check bool) "error lists valid keys" true
       (Tutil.contains e "seed:N"));
  (match Inject.spec_of_string "runs:0" with
   | Ok _ -> Alcotest.fail "runs:0 accepted"
   | Error _ -> ());
  match Inject.spec_of_string "" with
  | Ok _ -> Alcotest.fail "empty spec accepted"
  | Error _ -> ()

let test_verdict_json () =
  let w =
    corpus_workload ~predecode:true 0
      (image_of (Lazy.force corpus_programs).(0))
  in
  let spec = { Inject.default_spec with Inject.runs = 4 } in
  let c = campaign_exn ~spec w in
  let j = Inject.to_json c in
  List.iter
    (fun needle ->
       Alcotest.(check bool) (needle ^ " present") true (Tutil.contains j needle))
    [ "\"schema\": \"metal-inject-v1\""; "\"summary\""; "\"per_class\"";
      "\"records\""; "\"oracle_cycles\"" ];
  let masked, corrected, detected, silent = Inject.summary c in
  Alcotest.(check int) "summary covers every run" 4
    (masked + corrected + detected + silent)

(* The trace layer renders inject events symbolically without a
   dependency on lib/inject, so it keeps its own copy of the class
   table ([Event.inject_class_name]).  Pin the two tables together:
   a class added or renamed on one side must update the other. *)
let test_event_class_names () =
  List.iter
    (fun cls ->
       Alcotest.(check string)
         (Printf.sprintf "class code %d" (Inject.class_code cls))
         (Inject.class_to_string cls)
         (Metal_trace.Event.inject_class_name (Inject.class_code cls)))
    Inject.all_classes

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "inject"
    [
      ( "zero-fault identity",
        [ Alcotest.test_case "300-program corpus (fast)" `Quick
            (test_zero_fault_corpus ~predecode:true);
          Alcotest.test_case "300-program corpus (slow)" `Quick
            (test_zero_fault_corpus ~predecode:false) ] );
      ( "campaign determinism",
        [ Alcotest.test_case "replay + fleet domains (fast)" `Quick
            (test_campaign_determinism ~predecode:true);
          Alcotest.test_case "replay + fleet domains (slow)" `Quick
            (test_campaign_determinism ~predecode:false) ] );
      ( "edge cases",
        [ Alcotest.test_case "transient flip sweep: stall + flush (fast)"
            `Quick (test_transient_sweep ~predecode:true);
          Alcotest.test_case "transient flip sweep: stall + flush (slow)"
            `Quick (test_transient_sweep ~predecode:false);
          Alcotest.test_case "spurious irq in menter window (fast)" `Quick
            (test_irq_in_metal_window ~predecode:true);
          Alcotest.test_case "spurious irq in menter window (slow)" `Quick
            (test_irq_in_metal_window ~predecode:false);
          Alcotest.test_case "integrity trip on menter (fast)" `Quick
            (test_integrity_trip ~predecode:true);
          Alcotest.test_case "integrity trip on menter (slow)" `Quick
            (test_integrity_trip ~predecode:false);
          Alcotest.test_case "predecode cache coherence under code flips"
            `Quick test_predecode_coherence ] );
      ( "units",
        [ Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "verdict json" `Quick test_verdict_json;
          Alcotest.test_case "event class names stay in sync" `Quick
            test_event_class_names ] );
    ]
