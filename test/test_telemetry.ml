(* Unit tests for lib/telemetry: window splitting and attribution on
   synthetic probe streams (where every expected number is computable
   by hand), the watchdog rules and their spec parser, the Series
   merge algebra and ndjson/CSV renderings, and one end-to-end run
   whose window sums must close over the machine's Stats.  The
   cross-stepper identity and 300-program corpus properties live in
   test_differential. *)

open Metal_cpu
module Event = Metal_trace.Event
module Telemetry = Metal_telemetry.Telemetry
module Series = Telemetry.Series
module Watchdog = Telemetry.Watchdog

(* Feed a synthetic (cycle, kind, a, b) stream into a fresh collector. *)
let collect ?(window = 10) ?(rules = []) ?(wcet_bounds = []) events =
  let t = Telemetry.create ~window_cycles:window ~rules ~wcet_bounds () in
  let p = Telemetry.probe t in
  List.iter (fun (c, k, a, b) -> p c k a b) events;
  t

let retire ?(metal = false) c = (c, Event.retire, 0, if metal then 1 else 0)
let enter ?(entry = 1) c = (c, Event.mode_enter, entry, 0)
let exit_ c = (c, Event.mode_exit, 0, 0)
let stall c ~cause ~n = (c, Event.stall_begin, cause, n)
let flush c = (c, Event.flush, 0, 0)
let ecc c = (c, Event.ecc_correct, 0, 0)
let inject c = (c, Event.inject, 0, 0)

let rules_exn spec =
  match Watchdog.rules_of_string spec with
  | Ok r -> r
  | Error e -> Alcotest.failf "spec %S rejected: %s" spec e

let windows t = (Telemetry.series t).Series.windows

(* ------------------------------------------------------------------ *)
(* Window splitting and residency attribution                          *)

let test_window_split () =
  (* Events at cycles 3, 7, 12, 25: residency covers [0, 25), split
     10+10+5; retires land in the window containing their cycle. *)
  let t = collect [ retire 3; retire 7; retire 12; retire 25 ] in
  let s = Telemetry.series t in
  Alcotest.(check int) "window size" 10 s.Series.window_cycles;
  match s.Series.windows with
  | [ w0; w1; w2 ] ->
    Alcotest.(check int) "w0 residency" 10 (Series.window_cycle_count w0);
    Alcotest.(check int) "w1 residency" 10 (Series.window_cycle_count w1);
    Alcotest.(check int) "w2 residency (partial tail)" 5
      (Series.window_cycle_count w2);
    Alcotest.(check int) "total = last event cycle" 25
      (Series.total_cycles s);
    Alcotest.(check int) "w0 retires" 2 w0.Series.instructions;
    Alcotest.(check int) "w1 retires" 1 w1.Series.instructions;
    Alcotest.(check int) "w2 retires" 1 w2.Series.instructions;
    Alcotest.(check int) "all retires" 4 (Series.total_instructions s)
  | l -> Alcotest.failf "expected 3 windows, got %d" (List.length l)

let test_mode_attribution () =
  (* enter at 4, exit at 8: [0,4) user, [4,8) metal, [8,10) user — the
     mode flips after the span is credited, so the span leading up to
     each event belongs to the mode active before it. *)
  let t = collect [ enter 4; exit_ 8; flush 10 ] in
  match windows t with
  | [ w0; w1 ] ->
    Alcotest.(check int) "w0 user" 6 w0.Series.user_cycles;
    Alcotest.(check int) "w0 metal" 4 w0.Series.metal_cycles;
    Alcotest.(check int) "w0 enters" 1 w0.Series.mode_enters;
    Alcotest.(check int) "w0 exits" 1 w0.Series.mroutine_exits;
    Alcotest.(check int) "w0 latency" 4 w0.Series.mroutine_cycles;
    Alcotest.(check int) "w0 max latency" 4 w0.Series.mroutine_max;
    (* the flush at cycle 10 lands past the boundary: w1 exists with
       zero residency but one flush *)
    Alcotest.(check int) "w1 residency" 0 (Series.window_cycle_count w1);
    Alcotest.(check int) "w1 flushes" 1 w1.Series.flushes
  | l -> Alcotest.failf "expected 2 windows, got %d" (List.length l)

let test_stall_charged_at_begin () =
  (* A 5-cycle stall beginning at cycle 9 is charged wholly to w0 even
     though it runs into w1. *)
  let t =
    collect [ stall 9 ~cause:Event.stall_mem_latency ~n:5; flush 14 ]
  in
  match windows t with
  | [ w0; w1 ] ->
    Alcotest.(check (list (pair string int)))
      "w0 stalls" [ ("mem_latency", 5) ] w0.Series.stalls;
    Alcotest.(check (list (pair string int))) "w1 stalls" [] w1.Series.stalls
  | l -> Alcotest.failf "expected 2 windows, got %d" (List.length l)

let test_latency_spans_windows () =
  (* enter at 8, exit at 23: the enter counts in w0, the completed
     round trip (latency 15) is charged to the window containing the
     exit (w2), and the residency in between is all Metal. *)
  let t = collect [ enter 8; exit_ 23; flush 25 ] in
  match windows t with
  | [ w0; w1; w2 ] ->
    Alcotest.(check int) "w0 enters" 1 w0.Series.mode_enters;
    Alcotest.(check int) "w0 exits" 0 w0.Series.mroutine_exits;
    Alcotest.(check int) "w0 metal" 2 w0.Series.metal_cycles;
    Alcotest.(check int) "w1 metal" 10 w1.Series.metal_cycles;
    Alcotest.(check int) "w2 metal" 3 w2.Series.metal_cycles;
    Alcotest.(check int) "w2 exits" 1 w2.Series.mroutine_exits;
    Alcotest.(check int) "w2 latency" 15 w2.Series.mroutine_cycles;
    Alcotest.(check int) "w2 max" 15 w2.Series.mroutine_max
  | l -> Alcotest.failf "expected 3 windows, got %d" (List.length l)

let test_entry_stack_drop () =
  (* 17 nested enters overflow the 16-deep frame stack by one; the
     oldest frame is evicted and counted, and the orphaned 17th exit
     is ignored rather than mis-paired. *)
  let enters = List.init 17 (fun i -> enter (i + 1)) in
  let exits = List.init 17 (fun i -> exit_ (20 + i)) in
  let t = collect ~window:100 (enters @ exits) in
  let s = Telemetry.series t in
  Alcotest.(check int) "one frame dropped" 1 s.Series.dropped_entries;
  match s.Series.windows with
  | [ w0 ] ->
    Alcotest.(check int) "17 enters" 17 w0.Series.mode_enters;
    Alcotest.(check int) "16 completed exits" 16 w0.Series.mroutine_exits
  | l -> Alcotest.failf "expected 1 window, got %d" (List.length l)

let test_ecc_inject_counters () =
  let t = collect [ ecc 1; inject 2; ecc 3; ecc 4; flush 9 ] in
  match windows t with
  | [ w0 ] ->
    Alcotest.(check int) "ecc corrections" 3 w0.Series.ecc_corrections;
    Alcotest.(check int) "injections" 1 w0.Series.injections
  | l -> Alcotest.failf "expected 1 window, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Watchdog rules on synthetic streams                                 *)

let alarm_rules t =
  List.map (fun (a : Watchdog.alarm) -> (a.rule, a.window)) (Telemetry.alarms t)

let test_ipc_floor_rule () =
  (* w0 retires 2 of 10 cycles (ipc 0.2 < 0.5): alarm at close.  w1
     retires 8 (0.8): clean.  The partial tail is never judged. *)
  let t =
    collect ~rules:(rules_exn "ipc_floor:0.5")
      ([ retire 1; retire 2 ]
       @ List.init 8 (fun i -> retire (11 + i))
       @ [ retire 21 ])
  in
  Alcotest.(check (list (pair string int)))
    "one alarm, window 0" [ ("ipc_floor:0.5", 0) ] (alarm_rules t);
  match Telemetry.alarms t with
  | [ a ] ->
    Alcotest.(check bool) "warn severity" true (a.severity = Watchdog.Warn);
    Alcotest.(check int) "fires at window close" 10 a.cycle;
    Alcotest.(check (float 1e-9)) "observed value" 0.2 a.value;
    Alcotest.(check (list (pair string int)))
      "no fault alarms" []
      (List.map
         (fun (a : Watchdog.alarm) -> (a.rule, a.window))
         (Telemetry.fault_alarms (Telemetry.alarms t)))
  | l -> Alcotest.failf "expected 1 alarm, got %d" (List.length l)

let test_stall_share_rule () =
  (* w0: 5 of 10 cycles in mem_latency stalls (0.5 > 0.3) — alarm.
     w1: 2 of 10 (0.2) — clean. *)
  let t =
    collect ~rules:(rules_exn "stall_share:mem_latency>0.3")
      [ stall 4 ~cause:Event.stall_mem_latency ~n:5;
        stall 13 ~cause:Event.stall_mem_latency ~n:2;
        flush 20 ]
  in
  Alcotest.(check (list (pair string int)))
    "one alarm, window 0"
    [ ("stall_share:mem_latency>0.3", 0) ]
    (alarm_rules t)

let test_ecc_storm_rule () =
  (* w0 has 3 corrections (>= 3): alarm.  w1 has 2: clean. *)
  let t =
    collect ~rules:(rules_exn "ecc_storm:3")
      [ ecc 1; ecc 2; ecc 3; ecc 11; ecc 12; flush 20 ]
  in
  Alcotest.(check (list (pair string int)))
    "one alarm, window 0" [ ("ecc_storm:3", 0) ] (alarm_rules t)

let test_mode_residency_rule () =
  (* w0: 8 of 10 cycles in Metal mode (0.8 > 0.6): alarm.  w1 all
     user: clean. *)
  let t =
    collect ~rules:(rules_exn "mode_residency:metal>0.6")
      [ enter 1; exit_ 9; flush 20 ]
  in
  Alcotest.(check (list (pair string int)))
    "one alarm, window 0"
    [ ("mode_residency:metal>0.6", 0) ]
    (alarm_rules t)

let test_wcet_rule () =
  (* Bound 10 for entry 1: latency 8 passes, latency 12 faults at the
     exit cycle; an exit for an entry with no bound is itself a
     fault. *)
  let ok =
    collect ~rules:(rules_exn "wcet") ~wcet_bounds:[ (1, 10) ]
      [ enter 2; exit_ 10 ]
  in
  Alcotest.(check int) "within bound: no alarms" 0
    (List.length (Telemetry.alarms ok));
  let over =
    collect ~rules:(rules_exn "wcet") ~wcet_bounds:[ (1, 10) ]
      [ enter 2; exit_ 14 ]
  in
  (match Telemetry.alarms over with
   | [ a ] ->
     Alcotest.(check string) "rule" "wcet" a.rule;
     Alcotest.(check bool) "fault severity" true
       (a.severity = Watchdog.Fault);
     Alcotest.(check int) "fires at the exit cycle" 14 a.cycle;
     Alcotest.(check (float 1e-9)) "measured latency" 12.0 a.value;
     Alcotest.(check (float 1e-9)) "static bound" 10.0 a.threshold
   | l -> Alcotest.failf "expected 1 alarm, got %d" (List.length l));
  let unbounded =
    collect ~rules:(rules_exn "wcet:warn") ~wcet_bounds:[ (1, 10) ]
      (* entry 7 has no static bound: fault even under wcet:warn *)
      [ (2, Event.mode_enter, 7, 0); exit_ 5 ]
  in
  match Telemetry.alarms unbounded with
  | [ a ] ->
    Alcotest.(check bool) "missing bound is a fault" true
      (a.severity = Watchdog.Fault)
  | l -> Alcotest.failf "expected 1 alarm, got %d" (List.length l)

let test_wcet_warn_suffix () =
  let t =
    collect ~rules:(rules_exn "wcet:warn") ~wcet_bounds:[ (1, 10) ]
      [ enter 2; exit_ 14 ]
  in
  match Telemetry.alarms t with
  | [ a ] ->
    Alcotest.(check bool) "warn severity" true (a.severity = Watchdog.Warn);
    Alcotest.(check int) "not a fault alarm" 0
      (List.length (Telemetry.fault_alarms (Telemetry.alarms t)))
  | l -> Alcotest.failf "expected 1 alarm, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* The spec parser                                                     *)

let test_spec_round_trip () =
  let canonical =
    [ "wcet"; "wcet:warn"; "ipc_floor:0.5"; "ipc_floor:0.5:fault";
      "stall_share:mem_latency>0.25"; "ecc_storm:4"; "ecc_storm:4:fault";
      "mode_residency:metal>0.9"; "mode_residency:user>0.5" ]
  in
  let spec = String.concat "," canonical in
  let rules = rules_exn spec in
  Alcotest.(check (list string))
    "canonical specs round-trip" canonical
    (List.map Watchdog.rule_to_string rules);
  Alcotest.(check bool) "needs_wcet sees the wcet rule" true
    (Watchdog.needs_wcet rules);
  Alcotest.(check bool) "needs_wcet false without one" false
    (Watchdog.needs_wcet (rules_exn "ecc_storm:4"))

let test_spec_rejections () =
  List.iter
    (fun spec ->
       match Watchdog.rules_of_string spec with
       | Ok _ -> Alcotest.failf "spec %S accepted" spec
       | Error _ -> ())
    [ "bogus"; ""; "ipc_floor"; "ipc_floor:-1"; "ipc_floor:x";
      "stall_share:nosuchcause>0.5"; "stall_share:mem_latency";
      "ecc_storm:0"; "ecc_storm:"; "mode_residency:kernel>0.5";
      "wcet:loud"; "wcet,," ]

(* ------------------------------------------------------------------ *)
(* Series algebra and renderings                                       *)

let demo_series () =
  Telemetry.series
    (collect
       [ retire 3; enter 4; retire ~metal:true 6; exit_ 8;
         stall 12 ~cause:Event.stall_data_cache ~n:2; retire 15;
         ecc 17; inject 21; retire 24 ])

let test_merge_algebra () =
  let s = demo_series () in
  Alcotest.(check bool) "empty left identity" true
    (Series.equal s (Series.merge Series.empty s));
  Alcotest.(check bool) "empty right identity" true
    (Series.equal s (Series.merge s Series.empty));
  let d = Series.merge s s in
  Alcotest.(check int) "cycles doubled" (2 * Series.total_cycles s)
    (Series.total_cycles d);
  Alcotest.(check int) "instructions doubled"
    (2 * Series.total_instructions s)
    (Series.total_instructions d);
  Alcotest.(check int) "window count unchanged"
    (List.length s.Series.windows)
    (List.length d.Series.windows);
  (* padding: a 1-window series merged with a 3-window one *)
  let short = Telemetry.series (collect [ retire 3; retire 5 ]) in
  let m = Series.merge short s in
  Alcotest.(check int) "padded to the longer series"
    (List.length s.Series.windows)
    (List.length m.Series.windows);
  Alcotest.(check int) "padded total sums"
    (Series.total_cycles short + Series.total_cycles s)
    (Series.total_cycles m);
  (* window-size mismatch is a hard error *)
  let other = Telemetry.series (collect ~window:16 [ retire 3 ]) in
  match Series.merge s other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "merged series with mismatched window_cycles"

let test_ndjson_round_trip () =
  let s =
    Series.annotate (demo_series ()) ~machine_cycles:24 ~accounted_cycles:24
  in
  let doc = Series.to_ndjson s in
  match Series.of_ndjson doc with
  | Error e -> Alcotest.fail ("ndjson does not parse: " ^ e)
  | Ok s' ->
    Alcotest.(check bool) "parses back equal" true (Series.equal s s');
    Alcotest.(check string) "rendering is canonical" doc
      (Series.to_ndjson s')

let test_ndjson_rejections () =
  let doc = Series.to_ndjson (demo_series ()) in
  let lines = String.split_on_char '\n' doc in
  (* drop a window line: header count no longer matches *)
  let truncated =
    String.concat "\n" (List.filteri (fun i _ -> i <> 1) lines)
  in
  (match Series.of_ndjson truncated with
   | Ok _ -> Alcotest.fail "accepted document with a missing window"
   | Error _ -> ());
  match Series.of_ndjson "" with
  | Ok _ -> Alcotest.fail "accepted empty document"
  | Error _ -> ()

let test_csv_shape () =
  let s = demo_series () in
  let csv = Series.to_csv s in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "one header + one row per window"
    (1 + List.length s.Series.windows)
    (List.length lines);
  Alcotest.(check bool) "header names the window column" true
    (String.length (List.hd lines) > 6
     && String.sub (List.hd lines) 0 7 = "window,")

(* ------------------------------------------------------------------ *)
(* End to end: a real machine's window sums close over its Stats       *)

let demo_src =
  "start:\nli s0, 8\nloop:\nmenter 1\naddi s0, s0, -1\n\
   bne s0, zero, loop\nebreak\n"

let demo_mcode =
  ".mentry 1, bump\n\
   bump:\nwmr m11, t0\nrmr t0, m10\naddi t0, t0, 1\nwmr m10, t0\n\
   rmr t0, m11\nmexit\n"

let assemble_exn src =
  match Metal_asm.Asm.assemble src with
  | Ok img -> img
  | Error e -> failwith (Metal_asm.Asm.error_to_string e)

let test_end_to_end () =
  let m = Machine.create ~config:Config.default () in
  (match Machine.load_mcode m (assemble_exn demo_mcode) with
   | Ok () -> ()
   | Error e -> failwith e);
  (match Machine.load_image m (assemble_exn demo_src) with
   | Ok () -> ()
   | Error e -> failwith e);
  Machine.set_pc m 0;
  let t = Telemetry.create ~window_cycles:16 () in
  Machine.set_probe m (Telemetry.probe t);
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_ebreak _) -> ()
   | Some h -> failwith (Machine.halted_to_string h)
   | None -> failwith "no halt");
  let s = Telemetry.series t in
  let stats = m.Machine.stats in
  Alcotest.(check int) "windows cover every cycle" stats.Stats.cycles
    (Series.total_cycles s);
  Alcotest.(check int) "windows count every retire"
    stats.Stats.instructions
    (Series.total_instructions s);
  Alcotest.(check int) "eight completed round trips" 8
    (List.fold_left
       (fun acc (w : Series.window) -> acc + w.Series.mroutine_exits)
       0 s.Series.windows);
  (* every closed window carries exactly window_cycles of residency *)
  List.iteri
    (fun i (w : Series.window) ->
       if i < List.length s.Series.windows - 1 then
         Alcotest.(check int)
           (Printf.sprintf "window %d residency" i)
           16
           (Series.window_cycle_count w))
    s.Series.windows

let () =
  Alcotest.run "telemetry"
    [
      ( "windows",
        [ Alcotest.test_case "splitting and residency" `Quick
            test_window_split;
          Alcotest.test_case "mode attribution" `Quick test_mode_attribution;
          Alcotest.test_case "stalls charged at begin" `Quick
            test_stall_charged_at_begin;
          Alcotest.test_case "latency spans windows" `Quick
            test_latency_spans_windows;
          Alcotest.test_case "entry-stack overflow counted" `Quick
            test_entry_stack_drop;
          Alcotest.test_case "ecc/inject counters" `Quick
            test_ecc_inject_counters ] );
      ( "watchdog",
        [ Alcotest.test_case "ipc_floor" `Quick test_ipc_floor_rule;
          Alcotest.test_case "stall_share" `Quick test_stall_share_rule;
          Alcotest.test_case "ecc_storm" `Quick test_ecc_storm_rule;
          Alcotest.test_case "mode_residency" `Quick test_mode_residency_rule;
          Alcotest.test_case "wcet against static bounds" `Quick
            test_wcet_rule;
          Alcotest.test_case "wcet severity suffix" `Quick
            test_wcet_warn_suffix ] );
      ( "specs",
        [ Alcotest.test_case "canonical round-trip" `Quick
            test_spec_round_trip;
          Alcotest.test_case "rejections" `Quick test_spec_rejections ] );
      ( "series",
        [ Alcotest.test_case "merge algebra" `Quick test_merge_algebra;
          Alcotest.test_case "ndjson round-trip" `Quick
            test_ndjson_round_trip;
          Alcotest.test_case "ndjson rejections" `Quick
            test_ndjson_rejections;
          Alcotest.test_case "csv shape" `Quick test_csv_shape ] );
      ( "end-to-end",
        [ Alcotest.test_case "window sums close over Stats" `Quick
            test_end_to_end ] );
    ]
