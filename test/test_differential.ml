(* Differential testing: the pipelined machine vs. the golden-model
   reference interpreter.

   Random programs of ALU operations, memory accesses and forward
   branches are run on both implementations; the architectural outcome
   (all 32 registers plus the data region) must be identical.  This
   exercises forwarding, load-use interlocks, flush-on-branch and
   store-data paths against an implementation that has none of them.

   Every property runs against BOTH steppers — [Pipeline]'s predecode
   fast path and the [Pipeline_slow] option-latch oracle — and
   failures are reported as a minimal trace: a greedy minimizer drops
   instructions while the divergence (of the same kind) persists, so
   the report shows the shortest program that still diverges.  The
   300-program predecode-invariance corpus runs on the fleet batch
   runner. *)

open Metal_cpu
module Fleet = Metal_fleet.Fleet

let mem_size = 64 * 1024
let data_base = 0x1000
let data_words = 64

(* x28 (t3) is reserved as the data-region base to keep generated
   addresses in range. *)
let base_reg = 28

let gen_reg = QCheck.Gen.int_range 0 15

let gen_instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Instr in
  let gen_alu = oneofl [ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And ] in
  let gen_alu_imm = oneofl [ Add; Slt; Sltu; Xor; Or; And ] in
  let gen_shift = oneofl [ Sll; Srl; Sra ] in
  let gen_cond = oneofl [ Beq; Bne; Blt; Bge; Bltu; Bgeu ] in
  let word_off = map (fun i -> 4 * i) (int_range 0 (data_words - 1)) in
  frequency
    [ (4, map3 (fun op (rd, rs1) rs2 -> Op { op; rd; rs1; rs2 }) gen_alu
         (pair gen_reg gen_reg) gen_reg);
      (4, map3 (fun op (rd, rs1) imm -> Op_imm { op; rd; rs1; imm })
         gen_alu_imm (pair gen_reg gen_reg) (int_range (-2048) 2047));
      (2, map3 (fun op (rd, rs1) sh -> Op_imm { op; rd; rs1; imm = sh })
         gen_shift (pair gen_reg gen_reg) (int_range 0 31));
      (1, map2 (fun rd imm -> Lui { rd; imm }) gen_reg (int_range 0 0xFFFFF));
      (1, map2 (fun rd imm -> Auipc { rd; imm }) gen_reg (int_range 0 0xFF));
      (3, map2 (fun rd offset ->
           Load { width = Word; unsigned = false; rd; rs1 = base_reg; offset })
         gen_reg word_off);
      (1, map3 (fun (width, unsigned) rd offset ->
           let offset = if width = Half then offset land (lnot 1) else offset in
           Load { width; unsigned; rd; rs1 = base_reg; offset })
         (pair (oneofl [ Byte; Half ]) bool) gen_reg
         (int_range 0 ((data_words * 4) - 4)));
      (3, map2 (fun rs2 offset ->
           Store { width = Word; rs2; rs1 = base_reg; offset })
         gen_reg word_off);
      (1, map2 (fun rs2 offset ->
           Store { width = Byte; rs2; rs1 = base_reg; offset })
         gen_reg (int_range 0 ((data_words * 4) - 1)));
      (* Forward control flow only: skip the next instruction. *)
      (2, map3 (fun cond rs1 rs2 -> Branch { cond; rs1; rs2; offset = 8 })
         gen_cond gen_reg gen_reg);
      (1, map (fun rd -> Jal { rd; offset = 8 }) gen_reg);
    ]

(* A program: seed some registers, set up the base register, run the
   random body, ebreak.  The body never branches past the ebreak
   because the last two slots are plain ALU ops. *)
let gen_program : Instr.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let* body = list_size (int_range 5 60) gen_instr in
  let* seeds = list_size (return 6) (pair gen_reg (int_range (-100) 1000)) in
  let prologue =
    Instr.Lui { rd = base_reg; imm = data_base lsr 12 }
    :: List.concat_map
         (fun (r, v) ->
            if r = 0 then []
            else [ Instr.Op_imm { op = Instr.Add; rd = r; rs1 = 0; imm = v } ])
         seeds
  in
  let epilogue =
    [ Instr.Op { op = Instr.Add; rd = 1; rs1 = 2; rs2 = 3 };
      Instr.Op { op = Instr.Xor; rd = 4; rs1 = 5; rs2 = 6 };
      Instr.Ebreak ]
  in
  return (prologue @ body @ epilogue)

let print_program instrs =
  String.concat "\n" (List.map Instr.to_string instrs)

let image_of instrs =
  let b = Metal_asm.Image.Builder.create () in
  List.iteri
    (fun i instr ->
       match
         Metal_asm.Image.Builder.emit_word b ~addr:(4 * i)
           (Encode.encode_exn instr)
       with
       | Ok () -> ()
       | Error e -> failwith e)
    instrs;
  Metal_asm.Image.Builder.finish b

let seed_data write =
  for i = 0 to data_words - 1 do
    write (data_base + (4 * i)) (Word.of_int ((i * 0x01234567) + 0x89ABCDEF))
  done

(* [predecode:true] exercises the fast stepper, [predecode:false] the
   [Pipeline_slow] option-latch oracle — every property below runs
   against both. *)
let run_pipeline ?(predecode = Config.default.Config.predecode) img =
  let config = { Config.default with Config.mem_size; Config.predecode } in
  let m = Machine.create ~config () in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  seed_data (Machine.write_word m);
  Machine.set_pc m 0;
  match Pipeline.run m ~max_cycles:100_000 with
  | Some (Machine.Halt_ebreak _) -> Ok m
  | Some h -> Error (Machine.halted_to_string h)
  | None -> Error "pipeline: no halt"

let oracle_name predecode = if predecode then "fast" else "slow"

let run_reference img =
  let r = Reference.create ~mem_size in
  (match Reference.load_image r img with Ok () -> () | Error e -> failwith e);
  seed_data (fun addr v ->
      for i = 0 to 3 do
        Bytes.set r.Reference.mem (addr + i)
          (Char.chr ((v lsr (8 * i)) land 0xFF))
      done);
  match Reference.run r ~max_instructions:10_000 with
  | Reference.Stop_ebreak _ -> Ok r
  | Reference.Stop_limit -> Error "reference: limit"
  | Reference.Stop_fault msg -> Error ("reference: " ^ msg)

let compare_states m r =
  let diffs = ref [] in
  for reg = 1 to 31 do
    let a = Machine.get_reg m reg and b = Reference.get_reg r reg in
    if a <> b then
      diffs :=
        Printf.sprintf "%s: pipeline=%s reference=%s" (Reg.to_string reg)
          (Word.to_hex a) (Word.to_hex b)
        :: !diffs
  done;
  for i = 0 to data_words - 1 do
    let addr = data_base + (4 * i) in
    let a = Machine.read_word m addr and b = Reference.read_word r addr in
    if a <> b then
      diffs :=
        Printf.sprintf "mem[%s]: pipeline=%s reference=%s" (Word.to_hex addr)
          (Word.to_hex a) (Word.to_hex b)
        :: !diffs
  done;
  !diffs

(* ------------------------------------------------------------------ *)
(* Minimal-trace reporting.

   A divergence predicate classifies a program as [`State msg] (both
   sides halted, architectural state differs) or [`Error msg] (one
   side faulted / timed out).  The greedy minimizer drops instructions
   one at a time — never the final [Ebreak] — keeping a candidate only
   while a divergence of the SAME kind persists, so minimization
   cannot wander from a state mismatch to some unrelated
   removal-induced fault.  Failures therefore report the shortest
   program known to still diverge. *)

let kind_of = function `State _ -> `State | `Error _ -> `Error

let describe = function `State msg | `Error msg -> msg

let minimize ~diverges instrs =
  let same_kind k cand =
    match diverges cand with
    | Some d when kind_of d = k -> Some cand
    | Some _ | None -> None
  in
  match diverges instrs with
  | None -> None
  | Some d0 ->
    let k = kind_of d0 in
    let rec pass instrs =
      let n = List.length instrs in
      let rec try_drop i =
        if i >= n - 1 then None (* keep the final ebreak *)
        else
          match same_kind k (List.filteri (fun j _ -> j <> i) instrs) with
          | Some cand -> Some cand
          | None -> try_drop (i + 1)
      in
      match try_drop 0 with Some cand -> pass cand | None -> instrs
    in
    Some (pass instrs, d0)

let report_minimal ~diverges instrs =
  match minimize ~diverges instrs with
  | None -> "not a divergence (flaky run?)"
  | Some (minimal, original) ->
    let final =
      match diverges minimal with Some d -> d | None -> original
    in
    Printf.sprintf
      "minimal diverging program (%d instrs, shrunk from %d):\n%s\n--\n%s"
      (List.length minimal) (List.length instrs) (print_program minimal)
      (describe final)

(* QCheck-level shrinking for the same generator: drop any single
   instruction except the final ebreak (dropping that would turn every
   failure into an uninteresting run-off-the-end fault). *)
let shrink_program instrs yield =
  let n = List.length instrs in
  List.iteri
    (fun i _ ->
       if i < n - 1 then yield (List.filteri (fun j _ -> j <> i) instrs))
    instrs

let arb_program =
  QCheck.make ~print:print_program ~shrink:shrink_program gen_program

(* Pipeline (either stepper) vs. the golden model. *)
let golden_divergence ~predecode instrs =
  let img = image_of instrs in
  match (run_pipeline ~predecode img, run_reference img) with
  | Ok m, Ok r ->
    (match compare_states m r with
     | [] -> None
     | diffs -> Some (`State (String.concat "\n" diffs)))
  | Error e, Ok _ -> Some (`Error ("pipeline: " ^ e))
  | Ok _, Error e -> Some (`Error e)
  | Error ep, Error er ->
    Some (`Error (Printf.sprintf "both failed: %s / %s" ep er))

let prop_differential ~predecode =
  let diverges = golden_divergence ~predecode in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "pipeline(%s) matches golden model"
         (oracle_name predecode))
    ~count:800 arb_program
    (fun instrs ->
       match diverges instrs with
       | None -> true
       | Some _ -> QCheck.Test.fail_report (report_minimal ~diverges instrs))

(* Retired-instruction counts must also agree (the pipeline retires
   each architectural instruction exactly once despite stalls and
   flushes). *)
let retired_divergence ~predecode instrs =
  let img = image_of instrs in
  match (run_pipeline ~predecode img, run_reference img) with
  | Ok m, Ok r ->
    (* The pipeline does not count the halting ebreak's retirement the
       same way; compare pre-ebreak counts. *)
    let p = m.Machine.stats.Stats.instructions and g = r.Reference.retired in
    if p = g then None
    else Some (`State (Printf.sprintf "retired: pipeline=%d reference=%d" p g))
  | Error e, _ | _, Error e -> Some (`Error e)

let prop_retired_count ~predecode =
  let diverges = retired_divergence ~predecode in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "retired counts agree (%s)" (oracle_name predecode))
    ~count:200 arb_program
    (fun instrs ->
       match diverges instrs with
       | None -> true
       | Some _ -> QCheck.Test.fail_report (report_minimal ~diverges instrs))

(* Timing configurations must not change architectural results. *)
let run_pipeline_with config img =
  let m = Machine.create ~config () in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  seed_data (Machine.write_word m);
  Machine.set_pc m 0;
  match Pipeline.run m ~max_cycles:1_000_000 with
  | Some (Machine.Halt_ebreak _) -> Ok m
  | Some h -> Error (Machine.halted_to_string h)
  | None -> Error "no halt"

let prop_config_invariance =
  QCheck.Test.make ~name:"timing configs preserve architectural state"
    ~count:150 arb_program
    (fun instrs ->
       let img = image_of instrs in
       let base = { Config.default with Config.mem_size } in
       let configs =
         [ base;
           { base with Config.predecode = false } (* Pipeline_slow oracle *);
           { base with Config.transition = Config.Trap_flush };
           { base with
             Config.mram_backing = Config.Main_memory { fetch_penalty = 2 };
             Config.mem_latency = 3 };
           { base with
             Config.icache =
               Some { Metal_hw.Cache.lines = 8; line_bytes = 16;
                      miss_penalty = 5 };
             Config.dcache =
               Some { Metal_hw.Cache.lines = 8; line_bytes = 16;
                      miss_penalty = 5 } } ]
       in
       match List.map (fun c -> run_pipeline_with c img) configs with
       | Ok first :: rest ->
         List.for_all
           (function
             | Ok m ->
               Array.for_all2 ( = ) m.Machine.regs first.Machine.regs
               && (let same = ref true in
                   for i = 0 to data_words - 1 do
                     let addr = data_base + (4 * i) in
                     if Machine.read_word m addr
                        <> Machine.read_word first addr
                     then same := false
                   done;
                   !same)
             | Error _ -> false)
           rest
       | _ -> QCheck.Test.fail_report "baseline failed")

(* The predecode cache is purely a host-side accelerator: disabling it
   must reproduce identical architectural state AND identical simulated
   timing (cycles and every other statistic). *)

let run_with_predecode ~predecode img =
  let config = { Config.default with Config.mem_size; Config.predecode } in
  run_pipeline_with config img

(* The block translation cache layers on top of predecode: with
   [Config.blockcache] on (the default), [Pipeline.run] dispatches
   whole superblocks through the compiled stepper, so the
   [predecode:true] side of every property above already exercises it
   against the slow oracle.  This third configuration isolates the
   remaining pair: blocks-on vs the per-cycle fast stepper. *)
let run_with_blocks ~blockcache img =
  let config = { Config.default with Config.mem_size; Config.blockcache } in
  run_pipeline_with config img

let predecode_divergence instrs =
  let img = image_of instrs in
  match
    (run_with_predecode ~predecode:true img,
     run_with_predecode ~predecode:false img)
  with
  | Ok a, Ok b ->
    if not (Array.for_all2 ( = ) a.Machine.regs b.Machine.regs) then
      Some (`State "register files differ")
    else if a.Machine.stats <> b.Machine.stats then
      Some
        (`State
           (Printf.sprintf "stats differ:\nwith:    %s\nwithout: %s"
              (Stats.to_string a.Machine.stats)
              (Stats.to_string b.Machine.stats)))
    else begin
      let diff = ref None in
      for i = 0 to data_words - 1 do
        let addr = data_base + (4 * i) in
        if !diff = None && Machine.read_word a addr <> Machine.read_word b addr
        then
          diff :=
            Some
              (`State
                 (Printf.sprintf "mem[%s]: with=%s without=%s"
                    (Word.to_hex addr)
                    (Word.to_hex (Machine.read_word a addr))
                    (Word.to_hex (Machine.read_word b addr))))
      done;
      !diff
    end
  | Error e, Ok _ -> Some (`Error ("with predecode: " ^ e))
  | Ok _, Error e -> Some (`Error ("without predecode: " ^ e))
  | Error ea, Error eb ->
    if ea = eb then None
    else Some (`Error (Printf.sprintf "errors differ: %s / %s" ea eb))

let prop_predecode_invariance =
  QCheck.Test.make ~name:"predecode cache is timing-invisible" ~count:100
    arb_program
    (fun instrs ->
       match predecode_divergence instrs with
       | None -> true
       | Some _ ->
         QCheck.Test.fail_report
           (report_minimal ~diverges:predecode_divergence instrs))

(* Blocks-on vs blocks-off (both with predecode): identical registers,
   identical Stats — the block stepper must be invisible in simulated
   timing, not just architectural outcome. *)
let blocks_divergence instrs =
  let img = image_of instrs in
  match
    (run_with_blocks ~blockcache:true img,
     run_with_blocks ~blockcache:false img)
  with
  | Ok a, Ok b ->
    if not (Array.for_all2 ( = ) a.Machine.regs b.Machine.regs) then
      Some (`State "register files differ (blocks vs fast)")
    else if a.Machine.stats <> b.Machine.stats then
      Some
        (`State
           (Printf.sprintf "stats differ:\nblocks: %s\nfast:   %s"
              (Stats.to_string a.Machine.stats)
              (Stats.to_string b.Machine.stats)))
    else begin
      let diff = ref None in
      for i = 0 to data_words - 1 do
        let addr = data_base + (4 * i) in
        if !diff = None && Machine.read_word a addr <> Machine.read_word b addr
        then
          diff :=
            Some
              (`State
                 (Printf.sprintf "mem[%s]: blocks=%s fast=%s"
                    (Word.to_hex addr)
                    (Word.to_hex (Machine.read_word a addr))
                    (Word.to_hex (Machine.read_word b addr))))
      done;
      !diff
    end
  | Error e, Ok _ -> Some (`Error ("blocks: " ^ e))
  | Ok _, Error e -> Some (`Error ("fast: " ^ e))
  | Error ea, Error eb ->
    if ea = eb then None
    else Some (`Error (Printf.sprintf "errors differ: %s / %s" ea eb))

let prop_blocks_invariance =
  QCheck.Test.make ~name:"block translation cache is timing-invisible"
    ~count:100 arb_program
    (fun instrs ->
       match blocks_divergence instrs with
       | None -> true
       | Some _ ->
         QCheck.Test.fail_report
           (report_minimal ~diverges:blocks_divergence instrs))

(* The 300-program predecode-invariance corpus, regenerated from a
   fixed seed and checked on the fleet batch runner: one job per
   program, every divergence minimized and reported.  This is the bulk
   randomized coverage; the QCheck property above keeps a smaller
   freshly-seeded stream with shrinking in the loop. *)
let corpus_programs =
  lazy
    (let rand = Random.State.make [| 0x5EED; 300 |] in
     Array.init 300 (fun _ -> QCheck.Gen.generate1 ~rand gen_program))

(* Run a divergence predicate over the whole corpus on the fleet; any
   diverging program is minimized before reporting. *)
let corpus_fleet_check ~diverges () =
  let progs = Lazy.force corpus_programs in
  let checks = Fleet.map (fun instrs -> diverges instrs) progs in
  let failures = ref [] in
  Array.iteri
    (fun i r ->
       match r with
       | Ok None -> ()
       | Ok (Some _) ->
         failures :=
           Printf.sprintf "corpus[%d]: %s" i
             (report_minimal ~diverges progs.(i))
           :: !failures
       | Error e -> failures := Printf.sprintf "corpus[%d] crashed: %s" i e :: !failures)
    checks;
  match !failures with
  | [] -> ()
  | fs ->
    Alcotest.fail
      (Printf.sprintf "%d/%d corpus programs diverge:\n%s" (List.length fs)
         (Array.length progs)
         (String.concat "\n\n" (List.rev fs)))

let test_predecode_corpus_fleet () =
  corpus_fleet_check ~diverges:predecode_divergence ()

(* ------------------------------------------------------------------ *)
(* Observability differential (see lib/trace).  The probe is a pure
   observer, so both steppers must emit bit-identical event streams —
   same events at the same cycles with the same payloads — and hence
   equal derived metrics (per-mroutine latency histograms included).
   Any asymmetry is an instrumentation bug in one stepper. *)

module Trace = Metal_trace

let run_collected ~predecode img =
  let config = { Config.default with Config.mem_size; Config.predecode } in
  let m = Machine.create ~config () in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  seed_data (Machine.write_word m);
  Machine.set_pc m 0;
  let c = Trace.Collector.create ~capacity:(1 lsl 16) () in
  Machine.set_probe m (Trace.Collector.probe c);
  match Pipeline.run m ~max_cycles:100_000 with
  | Some (Machine.Halt_ebreak _) -> Ok (m, c)
  | Some h -> Error (Machine.halted_to_string h)
  | None -> Error "pipeline: no halt"

let pp_event (c, k, a, b) =
  Printf.sprintf "(cycle=%d %s a=%d b=%d)" c (Trace.Event.name k) a b

let event_stream_divergence instrs =
  let img = image_of instrs in
  match
    (run_collected ~predecode:true img, run_collected ~predecode:false img)
  with
  | Ok (_, ca), Ok (_, cb) ->
    let ea = Trace.Ring.to_list (Trace.Collector.ring ca)
    and eb = Trace.Ring.to_list (Trace.Collector.ring cb) in
    if ea <> eb then begin
      let rec first i xs ys =
        match (xs, ys) with
        | [], [] -> Printf.sprintf "streams compare <> yet zip equal (%d)" i
        | x :: _, [] -> Printf.sprintf "event[%d]: fast extra %s" i (pp_event x)
        | [], y :: _ -> Printf.sprintf "event[%d]: slow extra %s" i (pp_event y)
        | x :: xs', y :: ys' ->
          if x = y then first (i + 1) xs' ys'
          else
            Printf.sprintf "event[%d]: fast=%s slow=%s" i (pp_event x)
              (pp_event y)
      in
      Some (`State ("event streams differ: " ^ first 0 ea eb))
    end
    else if
      not
        (Trace.Metrics.equal
           (Trace.Collector.metrics ca)
           (Trace.Collector.metrics cb))
    then Some (`State "metrics differ despite equal event streams")
    else None
  | Error e, Ok _ -> Some (`Error ("fast: " ^ e))
  | Ok _, Error e -> Some (`Error ("slow: " ^ e))
  | Error ea, Error eb ->
    if ea = eb then None
    else Some (`Error (Printf.sprintf "errors differ: %s / %s" ea eb))

let prop_event_stream_invariance =
  QCheck.Test.make ~name:"steppers emit bit-identical event streams"
    ~count:150 arb_program
    (fun instrs ->
       match event_stream_divergence instrs with
       | None -> true
       | Some _ ->
         QCheck.Test.fail_report
           (report_minimal ~diverges:event_stream_divergence instrs))

(* Stall accounting: every simulated cycle is attributed exactly once —
   instruction, bubble, event delivery, or one stall bucket (less the
   stall still pending at the sample point).  [Stats.accounted_cycles]
   spells the invariant out; a violation means a stepper double-charged
   or dropped a stall cycle. *)

let stall_invariant_divergence ~predecode instrs =
  let img = image_of instrs in
  match run_pipeline ~predecode img with
  | Error e -> Some (`Error e)
  | Ok m ->
    let s = m.Machine.stats in
    let accounted =
      Stats.accounted_cycles s ~pending_stall:m.Machine.stall_cycles
    in
    if accounted = s.Stats.cycles then None
    else
      Some
        (`State
           (Printf.sprintf "accounted=%d cycles=%d pending=%d\n%s" accounted
              s.Stats.cycles m.Machine.stall_cycles (Stats.to_string s)))

let prop_stall_accounting ~predecode =
  let diverges = stall_invariant_divergence ~predecode in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "stall accounting closes (%s)" (oracle_name predecode))
    ~count:200 arb_program
    (fun instrs ->
       match diverges instrs with
       | None -> true
       | Some _ -> QCheck.Test.fail_report (report_minimal ~diverges instrs))

(* Profiler accounting: the flat per-PC histogram plus the [other]
   bucket must account for every simulated cycle — the profiler's
   delta attribution and [Stats.accounted_cycles] close over the same
   set, so [Report.total_cycles] must equal both.  Checked on both
   steppers; a violation means a stepper emitted marks the profiler
   cannot reconcile (dropped retire, asymmetric call/ret hint). *)

module Profile = Metal_profile.Profile

let profile_accounting_divergence ~predecode instrs =
  let img = image_of instrs in
  let config = { Config.default with Config.mem_size; Config.predecode } in
  let m = Machine.create ~config () in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  seed_data (Machine.write_word m);
  Machine.set_pc m 0;
  let p = Profile.create () in
  Machine.set_probe m (Profile.probe p);
  match Pipeline.run m ~max_cycles:100_000 with
  | Some (Machine.Halt_ebreak _) ->
    let s = m.Machine.stats in
    let accounted =
      Stats.accounted_cycles s ~pending_stall:m.Machine.stall_cycles
    in
    let r = Profile.report ~upto:s.Stats.cycles p in
    let flat =
      List.fold_left
        (fun acc (f : Profile.Report.flat_row) -> acc + f.cycles)
        0 r.Profile.Report.flat
    in
    if
      r.Profile.Report.total_cycles = accounted
      && r.Profile.Report.total_cycles = flat + r.Profile.Report.other_cycles
    then None
    else
      Some
        (`State
           (Printf.sprintf
              "profile total=%d (flat=%d other=%d) accounted=%d cycles=%d"
              r.Profile.Report.total_cycles flat
              r.Profile.Report.other_cycles accounted s.Stats.cycles))
  | Some h -> Some (`Error (Machine.halted_to_string h))
  | None -> Some (`Error "pipeline: no halt")

let prop_profile_accounting ~predecode =
  let diverges = profile_accounting_divergence ~predecode in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "profile accounting closes (%s)" (oracle_name predecode))
    ~count:150 arb_program
    (fun instrs ->
       match diverges instrs with
       | None -> true
       | Some _ -> QCheck.Test.fail_report (report_minimal ~diverges instrs))

(* Telemetry accounting: the windowed series is folded from the same
   probe stream, so both steppers must produce the identical series,
   and the per-window residency and instruction sums must close over
   Stats exactly — a drift means the window splitter lost or
   double-credited a span. *)

module Telemetry = Metal_telemetry.Telemetry

let telemetry_accounting_divergence instrs =
  let img = image_of instrs in
  let run ~predecode =
    let config = { Config.default with Config.mem_size; Config.predecode } in
    let m = Machine.create ~config () in
    (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
    seed_data (Machine.write_word m);
    Machine.set_pc m 0;
    let t = Telemetry.create ~window_cycles:64 () in
    Machine.set_probe m (Telemetry.probe t);
    match Pipeline.run m ~max_cycles:100_000 with
    | Some (Machine.Halt_ebreak _) -> Ok (m.Machine.stats, Telemetry.series t)
    | Some h -> Error (Machine.halted_to_string h)
    | None -> Error "pipeline: no halt"
  in
  match (run ~predecode:true, run ~predecode:false) with
  | Ok (sa, ta), Ok (_, tb) ->
    if not (Telemetry.Series.equal ta tb) then
      Some (`State "telemetry series differ between steppers")
    else if Telemetry.Series.total_cycles ta <> sa.Stats.cycles then
      Some
        (`State
           (Printf.sprintf "windows cover %d cycles, machine ran %d"
              (Telemetry.Series.total_cycles ta)
              sa.Stats.cycles))
    else if Telemetry.Series.total_instructions ta <> sa.Stats.instructions
    then
      Some
        (`State
           (Printf.sprintf "windows count %d instructions, machine retired %d"
              (Telemetry.Series.total_instructions ta)
              sa.Stats.instructions))
    else None
  | Error e, Ok _ -> Some (`Error ("fast: " ^ e))
  | Ok _, Error e -> Some (`Error ("slow: " ^ e))
  | Error ea, Error eb ->
    if ea = eb then None
    else Some (`Error (Printf.sprintf "errors differ: %s / %s" ea eb))

let prop_telemetry_accounting =
  QCheck.Test.make ~name:"telemetry windows close over Stats (both steppers)"
    ~count:150 arb_program
    (fun instrs ->
       match telemetry_accounting_divergence instrs with
       | None -> true
       | Some _ ->
         QCheck.Test.fail_report
           (report_minimal ~diverges:telemetry_accounting_divergence instrs))

(* Fleet-merged telemetry: the same 300 telemetry jobs on 1 domain and
   on 8 must yield bit-identical per-job series and a byte-identical
   merged ndjson artifact, and every job's series must account for
   exactly its machine's cycles. *)
let test_telemetry_corpus_fleet_merge () =
  let progs = Lazy.force corpus_programs in
  let config = { Config.default with Config.mem_size } in
  let jobs =
    Array.map
      (fun instrs ->
         Fleet.job ~config ~fuel:100_000 ~telemetry:true ~telemetry_window:64
           (Fleet.Image (image_of instrs)))
      progs
  in
  let a = Fleet.run ~domains:1 jobs and b = Fleet.run ~domains:8 jobs in
  (match Fleet.identical a b with Ok () -> () | Error e -> Alcotest.fail e);
  let ja = Telemetry.Series.to_ndjson (Fleet.merge_telemetry a)
  and jb = Telemetry.Series.to_ndjson (Fleet.merge_telemetry b) in
  Alcotest.(check bool) "merged telemetry bytes identical" true (ja = jb);
  Array.iter
    (fun (o : Fleet.outcome) ->
       match o.Fleet.result with
       | Ok ok ->
         (match ok.Fleet.telemetry with
          | Some s ->
            Alcotest.(check int)
              (Printf.sprintf "corpus[%d] telemetry total" o.Fleet.index)
              ok.Fleet.stats.Stats.cycles
              (Telemetry.Series.total_cycles s)
          | None -> Alcotest.fail "telemetry job returned no series")
       | Error e -> Alcotest.fail (Fleet.fail_to_string e))
    a

(* Fleet-merged profiles: the same 300 profiling jobs on 1 domain and
   on 8 must yield bit-identical per-job reports and a byte-identical
   merged artifact, and every job's report must account for exactly
   its machine's cycles. *)
let test_profile_corpus_fleet_merge () =
  let progs = Lazy.force corpus_programs in
  let config = { Config.default with Config.mem_size } in
  let jobs =
    Array.map
      (fun instrs ->
         Fleet.job ~config ~fuel:100_000 ~profile:true
           (Fleet.Image (image_of instrs)))
      progs
  in
  let a = Fleet.run ~domains:1 jobs and b = Fleet.run ~domains:8 jobs in
  (match Fleet.identical a b with Ok () -> () | Error e -> Alcotest.fail e);
  let ja = Profile.Report.to_json (Fleet.merge_profiles a)
  and jb = Profile.Report.to_json (Fleet.merge_profiles b) in
  Alcotest.(check bool) "merged profile bytes identical" true (ja = jb);
  Array.iter
    (fun (o : Fleet.outcome) ->
       match o.Fleet.result with
       | Ok ok ->
         (match ok.Fleet.profile with
          | Some r ->
            Alcotest.(check int)
              (Printf.sprintf "corpus[%d] profile total" o.Fleet.index)
              ok.Fleet.stats.Stats.cycles r.Profile.Report.total_cycles
          | None -> Alcotest.fail "profiling job returned no profile")
       | Error e -> Alcotest.fail (Fleet.fail_to_string e))
    a

(* Self-modifying code: stores into the instruction stream must be
   observed by later fetches, i.e. they must invalidate any predecoded
   entry for the overwritten word.  The patched slot sits several
   instructions past the store so the new word is architecturally
   guaranteed to be fetched after the store's MEM stage. *)

let word_of i = Word.to_hex (Encode.encode_exn i)

(* Straight-line patch: overwrite a nop ahead with addi a0, a0, 64. *)
let smc_patch_ahead =
  Printf.sprintf
    "li a0, 1\nla t1, patch\nli t0, %s\nsw t0, 0(t1)\nnop\nnop\nnop\n\
     patch:\nnop\nebreak\n"
    (word_of (Instr.Op_imm { op = Instr.Add; rd = 10; rs1 = 10; imm = 64 }))

(* Patch the same slot twice and re-execute it via a backward jump:
   the second store must evict the decode cached while executing the
   first patched version. *)
let smc_patch_loop =
  Printf.sprintf
    "li a0, 0\nli t2, 0\nla t1, patch\nli t0, %s\nsw t0, 0(t1)\n\
     nop\nnop\nnop\npatch:\nnop\naddi t2, t2, 1\nli t0, %s\nsw t0, 0(t1)\n\
     li t4, 2\nblt t2, t4, back\nebreak\nback:\nj patch\n"
    (word_of (Instr.Op_imm { op = Instr.Add; rd = 10; rs1 = 10; imm = 5 }))
    (word_of (Instr.Op_imm { op = Instr.Add; rd = 10; rs1 = 10; imm = 7 }))

(* Every self-modifying source is checked three ways: against the
   golden model, for the expected result, and for predecode-on/off
   stats equality. *)
let smc_case name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let img = Metal_asm.Asm.assemble_exn src in
      (match (run_pipeline img, run_reference img) with
       | Ok m, Ok r ->
         (match compare_states m r with
          | [] -> ()
          | diffs -> Alcotest.fail (String.concat "\n" diffs));
         List.iter
           (fun (rname, v) ->
              match Reg.of_string rname with
              | Some reg -> Alcotest.(check int) rname v (Machine.get_reg m reg)
              | None -> Alcotest.fail rname)
           expected
       | Error e, _ | _, Error e -> Alcotest.fail e);
      (match
         (run_with_predecode ~predecode:true img,
          run_with_predecode ~predecode:false img)
       with
       | Ok a, Ok b ->
         Alcotest.(check bool)
           "regs equal" true
           (Array.for_all2 ( = ) a.Machine.regs b.Machine.regs);
         Alcotest.(check string)
           "stats equal"
           (Stats.to_string b.Machine.stats)
           (Stats.to_string a.Machine.stats)
       | Error e, _ | _, Error e -> Alcotest.fail e);
      (* The same stores must also invalidate superblocks (the patched
         word may sit mid-block, or inside the block that issued the
         store). *)
      match
        (run_with_blocks ~blockcache:true img,
         run_with_blocks ~blockcache:false img)
      with
      | Ok a, Ok b ->
        Alcotest.(check bool)
          "regs equal (blocks)" true
          (Array.for_all2 ( = ) a.Machine.regs b.Machine.regs);
        Alcotest.(check string)
          "stats equal (blocks)"
          (Stats.to_string b.Machine.stats)
          (Stats.to_string a.Machine.stats)
      | Error e, _ | _, Error e -> Alcotest.fail e)

let smc_cases =
  [ smc_case "patch-ahead" smc_patch_ahead [ ("a0", 65) ];
    smc_case "patch-loop-twice" smc_patch_loop [ ("a0", 12); ("t2", 2) ] ]

(* ------------------------------------------------------------------ *)
(* Block-cache regressions: the scenarios where a stale superblock or
   a stale block→block chain could diverge from the per-cycle stepper.
   Each compares blocks-on against blocks-off for identical registers
   and identical Stats (cycle-exactness, not just outcome). *)

let check_blocks_vs_fast ?(label = "") a b =
  Alcotest.(check bool)
    (label ^ "regs equal") true
    (Array.for_all2 ( = ) a.Machine.regs b.Machine.regs);
  Alcotest.(check string)
    (label ^ "stats equal")
    (Stats.to_string b.Machine.stats)
    (Stats.to_string a.Machine.stats)

(* A store whose target is only two slots ahead in the same superblock:
   closer than the architectural fetch-ahead guarantee, so the golden
   model is no oracle here — but the two pipeline steppers define the
   same cycle-exact machine and must agree on whichever outcome the
   pipeline produces. *)
let smc_close =
  Printf.sprintf
    "li a0, 1\nla t1, patch\nli t0, %s\nsw t0, 0(t1)\nnop\npatch:\nnop\n\
     ebreak\n"
    (word_of (Instr.Op_imm { op = Instr.Add; rd = 10; rs1 = 10; imm = 64 }))

let test_smc_store_into_executing_block () =
  let img = Metal_asm.Asm.assemble_exn smc_close in
  match
    (run_with_blocks ~blockcache:true img,
     run_with_blocks ~blockcache:false img)
  with
  | Ok a, Ok b -> check_blocks_vs_fast a b
  | Error e, _ | _, Error e -> Alcotest.fail e

(* A timer interrupt landing while the block stepper is deep inside a
   chained loop block: the interrupt guard must hand control back to
   the generic stepper on exactly the right cycle. *)
let tick_mcode =
  ".mentry 2, tick\ntick:\naddi s0, s0, 1\nli t6, 1\n\
   mcsrw int_pending, t6\nmexit\n"

let spin_prog =
  "li s0, 0\nli t0, 200\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak\n"

let run_interrupted ~blockcache =
  let config = { Config.default with Config.mem_size; Config.blockcache } in
  let m = Machine.create ~config () in
  (match Machine.load_mcode m (Metal_asm.Asm.assemble_exn tick_mcode) with
   | Ok () -> ()
   | Error e -> failwith e);
  (match Machine.load_image m (Metal_asm.Asm.assemble_exn spin_prog) with
   | Ok () -> ()
   | Error e -> failwith e);
  Machine.install_interrupt_handler m ~irq:0 ~entry:2;
  Machine.ctrl_write m Csr.int_enable 1;
  Machine.ctrl_write m Csr.timer_cmp 50;
  Machine.set_pc m 0;
  match Pipeline.run m ~max_cycles:100_000 with
  | Some (Machine.Halt_ebreak _) -> m
  | Some h -> failwith (Machine.halted_to_string h)
  | None -> failwith "no halt"

let test_interrupt_mid_block () =
  let a = run_interrupted ~blockcache:true
  and b = run_interrupted ~blockcache:false in
  check_blocks_vs_fast a b;
  Alcotest.(check int) "interrupt delivered" 1
    a.Machine.stats.Stats.interrupts;
  (match Reg.of_string "s0" with
   | Some s0 -> Alcotest.(check int) "handler ran once" 1 (Machine.get_reg a s0)
   | None -> Alcotest.fail "s0")

(* Reloading MRAM mid-run (the E8-style reconfiguration): superblocks
   and chains built around the old mroutine must be dropped when the
   reload bumps the MRAM version, never replayed against stale
   translations.  The cut points land at different phases of the loop
   so some runs pause mid-block. *)
let reload_prog =
  "li s0, 0\nli s1, 0\nli t0, 40\nloop:\nmenter 0\nadd s1, s1, s0\n\
   addi t0, t0, -1\nbnez t0, loop\nebreak\n"

let reload_mcode_v1 = ".mentry 0, f\nf:\naddi s0, s0, 1\nmexit\n"
let reload_mcode_v2 = ".mentry 0, f\nf:\naddi s0, s0, 100\nmexit\n"

let run_reload ~blockcache ~cut =
  let config = { Config.default with Config.mem_size; Config.blockcache } in
  let m = Machine.create ~config () in
  (match Machine.load_mcode m (Metal_asm.Asm.assemble_exn reload_mcode_v1) with
   | Ok () -> ()
   | Error e -> failwith e);
  (match Machine.load_image m (Metal_asm.Asm.assemble_exn reload_prog) with
   | Ok () -> ()
   | Error e -> failwith e);
  Machine.set_pc m 0;
  (match Pipeline.run m ~max_cycles:cut with
   | None -> ()
   | Some h ->
     failwith ("halted before the reload: " ^ Machine.halted_to_string h));
  (match Machine.load_mcode m (Metal_asm.Asm.assemble_exn reload_mcode_v2) with
   | Ok () -> ()
   | Error e -> failwith e);
  match Pipeline.run m ~max_cycles:100_000 with
  | Some (Machine.Halt_ebreak _) -> m
  | Some h -> failwith (Machine.halted_to_string h)
  | None -> failwith "no halt"

let test_mcode_reload_mid_run () =
  let mixed = ref false in
  List.iter
    (fun cut ->
       let a = run_reload ~blockcache:true ~cut
       and b = run_reload ~blockcache:false ~cut in
       check_blocks_vs_fast ~label:(Printf.sprintf "cut %d: " cut) a b;
       match Reg.of_string "s0" with
       | Some s0 ->
         let v = Machine.get_reg a s0 in
         if v > 40 && v < 4000 then mixed := true
       | None -> Alcotest.fail "s0")
    [ 30; 60; 90; 120; 150 ];
  (* at least one cut must actually land mid-run, so that calls before
     the reload saw v1 and calls after saw v2 — otherwise the test is
     not exercising invalidation at all *)
  Alcotest.(check bool) "some cut observed both mcode versions" true !mixed

let blockcache_cases =
  [ Alcotest.test_case "store into the executing block" `Quick
      test_smc_store_into_executing_block;
    Alcotest.test_case "interrupt arrives inside a chained block" `Quick
      test_interrupt_mid_block;
    Alcotest.test_case "MRAM reload invalidates blocks and chains" `Quick
      test_mcode_reload_mid_run ]

(* The minimizer itself: with a synthetic divergence predicate ("any
   store present"), a long program must shrink to store + ebreak, and
   kind tracking must refuse to cross from `State to `Error. *)
let test_minimizer_shrinks () =
  let has_store cand =
    if List.exists (function Instr.Store _ -> true | _ -> false) cand then
      Some (`State "store present")
    else None
  in
  let program =
    [ Instr.Lui { rd = 28; imm = 1 };
      Instr.Op { op = Instr.Add; rd = 1; rs1 = 2; rs2 = 3 };
      Instr.Store { width = Instr.Word; rs2 = 4; rs1 = 28; offset = 0 };
      Instr.Op { op = Instr.Xor; rd = 5; rs1 = 6; rs2 = 7 };
      Instr.Op_imm { op = Instr.Add; rd = 8; rs1 = 8; imm = 1 };
      Instr.Ebreak ]
  in
  (match minimize ~diverges:has_store program with
   | Some (minimal, _) ->
     Alcotest.(check int) "shrunk to store+ebreak" 2 (List.length minimal);
     Alcotest.(check bool) "keeps the store" true
       (List.exists (function Instr.Store _ -> true | _ -> false) minimal);
     Alcotest.(check bool) "keeps the final ebreak" true
       (List.nth minimal 1 = Instr.Ebreak)
   | None -> Alcotest.fail "divergence not detected");
  (* a predicate that changes kind under shrinking: candidates without
     the store report `Error; the minimizer must ignore those *)
  let kind_flips cand =
    if List.exists (function Instr.Store _ -> true | _ -> false) cand then
      if List.length cand > 4 then Some (`State "long with store") else None
    else Some (`Error "store gone")
  in
  match minimize ~diverges:kind_flips program with
  | Some (minimal, _) ->
    Alcotest.(check bool) "never crossed into `Error" true
      (List.exists (function Instr.Store _ -> true | _ -> false) minimal)
  | None -> Alcotest.fail "divergence not detected"

(* Directed regressions for classic pipeline traps. *)

let directed name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let img = Metal_asm.Asm.assemble_exn src in
      match (run_pipeline img, run_reference img) with
      | Ok m, Ok r ->
        (match compare_states m r with
         | [] -> ()
         | diffs -> Alcotest.fail (String.concat "\n" diffs));
        List.iter
          (fun (rname, v) ->
             match Reg.of_string rname with
             | Some reg ->
               Alcotest.(check int) rname v (Machine.get_reg m reg)
             | None -> Alcotest.fail rname)
          expected
      | Error e, _ | _, Error e -> Alcotest.fail e)

let directed_cases =
  [
    directed "load-use-chain"
      "li t3, 0x1000\nli a0, 5\nsw a0, 0(t3)\nlw a1, 0(t3)\naddi a2, a1, 1\n\
       add a3, a2, a1\nebreak\n"
      [ ("a2", 6); ("a3", 11) ];
    directed "store-after-load-same-addr"
      "li t3, 0x1000\nli a0, 7\nsw a0, 4(t3)\nlw a1, 4(t3)\naddi a1, a1, 1\n\
       sw a1, 4(t3)\nlw a2, 4(t3)\nebreak\n"
      [ ("a2", 8) ];
    directed "branch-shadow-squash"
      "li a0, 1\nbeq a0, a0, over\nli a1, 99\nli a2, 99\nover:\naddi a1, a1, 5\n\
       ebreak\n"
      [ ("a1", 5); ("a2", 0) ];
    directed "branch-uses-forwarded-value"
      "li a0, 4\naddi a1, a0, 1\nblt a0, a1, ok\nli a2, 99\nok:\naddi a2, a2, 1\n\
       ebreak\n"
      [ ("a2", 1) ];
    directed "jal-link-chain"
      "jal s0, l1\nl1:\njal s1, l2\nl2:\nadd s2, s0, s1\nebreak\n"
      [ ("s0", 4); ("s1", 8); ("s2", 12) ];
    directed "back-to-back-stores-forwarding"
      "li t3, 0x1000\nli a0, 1\naddi a1, a0, 1\nsw a1, 0(t3)\n\
       addi a2, a1, 1\nsw a2, 4(t3)\nlw a3, 0(t3)\nlw a4, 4(t3)\n\
       add a5, a3, a4\nebreak\n"
      [ ("a5", 5) ];
    directed "byte-halfword-mix"
      "li t3, 0x1000\nli a0, 0x8180\nsh a0, 0(t3)\nlb a1, 0(t3)\n\
       lbu a2, 1(t3)\nlh a3, 0(t3)\nlhu a4, 0(t3)\nebreak\n"
      [ ("a1", Word.of_int (-128)); ("a2", 0x81);
        ("a3", Word.of_int (-32384)); ("a4", 0x8180) ];
    directed "shift-edge-amounts"
      "li a0, -1\nsrai a1, a0, 31\nsrli a2, a0, 31\nslli a3, a0, 31\n\
       li t0, 32\nsll a4, a0, t0\nebreak\n"
      [ ("a1", 0xFFFFFFFF); ("a2", 1); ("a3", 0x80000000);
        ("a4", 0xFFFFFFFF) ];
  ]

let () =
  Alcotest.run "differential"
    [
      ("directed", directed_cases);
      ("self-modifying", smc_cases);
      ("block-cache", blockcache_cases);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_differential ~predecode:true;
            prop_differential ~predecode:false;
            prop_retired_count ~predecode:true;
            prop_retired_count ~predecode:false;
            prop_config_invariance; prop_predecode_invariance;
            prop_blocks_invariance; prop_event_stream_invariance;
            prop_stall_accounting ~predecode:true;
            prop_stall_accounting ~predecode:false;
            prop_profile_accounting ~predecode:true;
            prop_profile_accounting ~predecode:false;
            prop_telemetry_accounting ] );
      ( "fleet-corpus",
        [ Alcotest.test_case "300-program predecode invariance" `Quick
            test_predecode_corpus_fleet;
          Alcotest.test_case "300-program block-stepper invariance" `Quick
            (corpus_fleet_check ~diverges:blocks_divergence);
          Alcotest.test_case "300-program event-stream identity" `Quick
            (corpus_fleet_check ~diverges:event_stream_divergence);
          Alcotest.test_case "300-program stall accounting (fast)" `Quick
            (corpus_fleet_check
               ~diverges:(stall_invariant_divergence ~predecode:true));
          Alcotest.test_case "300-program stall accounting (slow)" `Quick
            (corpus_fleet_check
               ~diverges:(stall_invariant_divergence ~predecode:false));
          Alcotest.test_case "300-program profile accounting (fast)" `Quick
            (corpus_fleet_check
               ~diverges:(profile_accounting_divergence ~predecode:true));
          Alcotest.test_case "300-program profile accounting (slow)" `Quick
            (corpus_fleet_check
               ~diverges:(profile_accounting_divergence ~predecode:false));
          Alcotest.test_case "300-program telemetry accounting (both)" `Quick
            (corpus_fleet_check ~diverges:telemetry_accounting_divergence);
          Alcotest.test_case "300-program fleet profile merge determinism"
            `Quick test_profile_corpus_fleet_merge;
          Alcotest.test_case "300-program fleet telemetry merge determinism"
            `Quick test_telemetry_corpus_fleet_merge ] );
      ( "minimizer",
        [ Alcotest.test_case "greedy shrink keeps kind and witness" `Quick
            test_minimizer_shrinks ] );
    ]
