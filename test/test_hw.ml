(* Hardware substrate tests: physical memory, bus + MMIO, TLB, MRAM,
   Metal registers, interrupt controller, devices. *)

open Metal_hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Phys_mem *)

let test_mem_rw () =
  let m = Phys_mem.create ~size:4096 in
  Phys_mem.write32 m 0 0xDEADBEEF;
  check_int "read32" 0xDEADBEEF (Phys_mem.read32 m 0);
  check_int "little-endian byte 0" 0xEF (Phys_mem.read8 m 0);
  check_int "little-endian byte 3" 0xDE (Phys_mem.read8 m 3);
  Phys_mem.write16 m 100 0xABCD;
  check_int "read16" 0xABCD (Phys_mem.read16 m 100);
  Phys_mem.write8 m 200 0x1FF;
  check_int "write8 masks" 0xFF (Phys_mem.read8 m 200)

let test_mem_bounds () =
  let m = Phys_mem.create ~size:4096 in
  check_bool "in range" true (Phys_mem.in_range m ~addr:4092 ~width:4);
  check_bool "out of range" false (Phys_mem.in_range m ~addr:4093 ~width:4);
  check_bool "negative" false (Phys_mem.in_range m ~addr:(-1) ~width:1);
  Alcotest.check_raises "oob raises"
    (Invalid_argument "Phys_mem: out-of-range access 0x00001000/4")
    (fun () -> ignore (Phys_mem.read32 m 4096))

let test_mem_image () =
  let img = Metal_asm.Asm.assemble_exn ".org 0x10\n.word 0xCAFEBABE\n" in
  let m = Phys_mem.create ~size:4096 in
  (match Phys_mem.load_image m img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_int "loaded" 0xCAFEBABE (Phys_mem.read32 m 0x10);
  let img2 = Metal_asm.Asm.assemble_exn ".org 0x2000\n.word 1\n" in
  check_bool "oob image rejected" true
    (Result.is_error (Phys_mem.load_image m img2))

(* ------------------------------------------------------------------ *)
(* Bus *)

let make_bus () =
  let mem = Phys_mem.create ~size:4096 in
  (Bus.create ~mem, mem)

let test_bus_ram () =
  let bus, _ = make_bus () in
  (match Bus.store bus ~width:Instr.Word ~addr:16 0x12345678 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "store");
  (match Bus.load bus ~width:Instr.Half ~addr:16 with
   | Ok v -> check_int "half" 0x5678 v
   | Error _ -> Alcotest.fail "load");
  match Bus.load bus ~width:Instr.Word ~addr:0x100000 with
  | Error Cause.Access_fault -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected access fault"

let test_bus_mmio () =
  let bus, _ = make_bus () in
  let last_write = ref (-1, -1) in
  Bus.attach bus
    {
      Bus.name = "dev";
      base = 0xF000_0000;
      size = 0x10;
      read32 = (fun off -> off + 0x100);
      write32 = (fun off v -> last_write := (off, v));
      tick = (fun ~cycle:_ -> ());
    };
  (match Bus.load bus ~width:Instr.Word ~addr:0xF000_0004 with
   | Ok v -> check_int "mmio read" 0x104 v
   | Error _ -> Alcotest.fail "mmio read");
  (match Bus.store bus ~width:Instr.Word ~addr:0xF000_0008 77 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "mmio write");
  check_bool "write routed" true (!last_write = (8, 77));
  (* Narrow MMIO access faults. *)
  match Bus.load bus ~width:Instr.Byte ~addr:0xF000_0004 with
  | Error Cause.Access_fault -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected fault on narrow MMIO"

let test_bus_overlap_rejected () =
  let bus, _ = make_bus () in
  let dev base =
    { Bus.name = "d"; base; size = 0x10; read32 = (fun _ -> 0);
      write32 = (fun _ _ -> ()); tick = (fun ~cycle:_ -> ()) }
  in
  Alcotest.check_raises "overlaps RAM"
    (Invalid_argument "Bus.attach: d overlaps RAM") (fun () ->
      Bus.attach bus (dev 0));
  Bus.attach bus (dev 0xF000_0000);
  check_bool "overlapping device rejected" true
    (try
       Bus.attach bus (dev 0xF000_0008);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* TLB *)

let entry ?(asid = 1) ?(global = false) ?(pkey = 0) ~vpn ~ppn ?(r = true)
    ?(w = true) ?(x = false) () =
  { Tlb.asid; global; vpn; ppn; r; w; x; pkey }

let test_tlb_lookup () =
  let t = Tlb.create ~entries:4 in
  Tlb.insert t (entry ~vpn:0x10 ~ppn:0x20 ());
  (match Tlb.lookup t ~asid:1 ~vpn:0x10 with
   | Some e -> check_int "ppn" 0x20 e.Tlb.ppn
   | None -> Alcotest.fail "hit expected");
  check_bool "other asid misses" true (Tlb.lookup t ~asid:2 ~vpn:0x10 = None);
  check_bool "other vpn misses" true (Tlb.lookup t ~asid:1 ~vpn:0x11 = None)

let test_tlb_global () =
  let t = Tlb.create ~entries:4 in
  Tlb.insert t (entry ~global:true ~vpn:0x10 ~ppn:0x20 ());
  check_bool "global hits any asid" true
    (Tlb.lookup t ~asid:9 ~vpn:0x10 <> None);
  Tlb.flush_asid t ~asid:9;
  check_bool "global survives asid flush" true
    (Tlb.lookup t ~asid:9 ~vpn:0x10 <> None);
  Tlb.flush_all t;
  check_bool "flush_all clears" true (Tlb.lookup t ~asid:9 ~vpn:0x10 = None)

let test_tlb_replacement () =
  let t = Tlb.create ~entries:2 in
  Tlb.insert t (entry ~vpn:1 ~ppn:1 ());
  Tlb.insert t (entry ~vpn:2 ~ppn:2 ());
  Tlb.insert t (entry ~vpn:3 ~ppn:3 ());
  check_int "capacity respected" 2 (List.length (Tlb.entries t));
  (* Same tag replaces in place rather than evicting. *)
  Tlb.insert t (entry ~vpn:3 ~ppn:9 ());
  check_int "still 2" 2 (List.length (Tlb.entries t));
  match Tlb.lookup t ~asid:1 ~vpn:3 with
  | Some e -> check_int "updated" 9 e.Tlb.ppn
  | None -> Alcotest.fail "tag update lost"

let test_tlb_packed () =
  let t = Tlb.create ~entries:4 in
  let tag = Instr.pack_tlb_tag ~vpn:0x12345 ~asid:7 ~global:false in
  let data = Instr.pack_tlb_data ~ppn:0x54321 ~pkey:3 ~r:true ~w:false ~x:true in
  Tlb.insert_packed t ~tag ~data;
  (match Tlb.lookup t ~asid:7 ~vpn:0x12345 with
   | Some e ->
     check_int "ppn" 0x54321 e.Tlb.ppn;
     check_int "pkey" 3 e.Tlb.pkey;
     check_bool "perms" true (e.Tlb.r && e.Tlb.x && not e.Tlb.w)
   | None -> Alcotest.fail "miss");
  check_int "probe hit returns data" data
    (Tlb.probe_packed t ~asid:7 ~vaddr:(0x12345 lsl 12));
  check_int "probe miss returns 0" 0
    (Tlb.probe_packed t ~asid:7 ~vaddr:(0x99 lsl 12))

(* ------------------------------------------------------------------ *)
(* MRAM *)

let test_mram_image () =
  let mram = Mram.create ~code_words:64 ~data_bytes:64 () in
  let img =
    Metal_asm.Asm.assemble_exn
      ".mentry 0, a\n.mentry 5, b\na: mexit\nb: addi a0, a0, 1\n mexit\n"
  in
  (match Mram.load_image mram img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check (option int)) "entry 0" (Some 0) (Mram.entry_addr mram 0);
  Alcotest.(check (option int)) "entry 5" (Some 4) (Mram.entry_addr mram 5);
  Alcotest.(check (option int)) "entry 1 empty" None (Mram.entry_addr mram 1);
  (match Mram.fetch mram ~addr:0 with
   | Some w ->
     check_int "mexit word" (Encode.encode_exn (Instr.Metal Instr.Mexit)) w
   | None -> Alcotest.fail "fetch");
  check_bool "unaligned fetch" true (Mram.fetch mram ~addr:2 = None);
  check_bool "oob fetch" true (Mram.fetch mram ~addr:(64 * 4) = None)

let test_mram_data () =
  let mram = Mram.create ~code_words:16 ~data_bytes:32 () in
  check_bool "store ok" true (Mram.store_word mram ~addr:28 0xAA55AA55);
  Alcotest.(check (option int)) "load back" (Some 0xAA55AA55)
    (Mram.load_word mram ~addr:28);
  check_bool "oob store" false (Mram.store_word mram ~addr:32 1);
  check_bool "unaligned load" true (Mram.load_word mram ~addr:2 = None);
  Mram.clear_data mram;
  Alcotest.(check (option int)) "cleared" (Some 0) (Mram.load_word mram ~addr:28)

let test_mram_entry_errors () =
  let mram = Mram.create ~code_words:16 ~data_bytes:32 () in
  check_bool "entry oob" true (Result.is_error (Mram.set_entry mram ~entry:64 ~addr:0));
  check_bool "offset oob" true
    (Result.is_error (Mram.set_entry mram ~entry:0 ~addr:(16 * 4)));
  (match Mram.set_entry mram ~entry:0 ~addr:4 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_bool "collision" true
    (Result.is_error (Mram.set_entry mram ~entry:0 ~addr:8));
  check_bool "idempotent re-register" true
    (Result.is_ok (Mram.set_entry mram ~entry:0 ~addr:4))

(* ------------------------------------------------------------------ *)
(* Mregs / Intc *)

let test_mregs () =
  let r = Mregs.create () in
  Mregs.write r 31 0x12345678;
  check_int "rw" 0x12345678 (Mregs.read r 31);
  Mregs.write r 0 (-1);
  check_int "masked" 0xFFFFFFFF (Mregs.read r 0);
  check_int "default zero" 0 (Mregs.read r 7)

let test_intc () =
  let i = Intc.create () in
  check_bool "none pending" true (Intc.highest_pending i ~enabled:0xFFFF = None);
  Intc.raise_irq i 3;
  Intc.raise_irq i 1;
  Alcotest.(check (option int)) "lowest first" (Some 1)
    (Intc.highest_pending i ~enabled:0xFFFF);
  Alcotest.(check (option int)) "masked" (Some 3)
    (Intc.highest_pending i ~enabled:0x8);
  Intc.clear i ~mask:0x2;
  Alcotest.(check (option int)) "after clear" (Some 3)
    (Intc.highest_pending i ~enabled:0xFFFF);
  check_int "pending mask" 0x8 (Intc.pending i)

(* ------------------------------------------------------------------ *)
(* Devices *)

let test_console () =
  let c = Devices.Console.create ~base:0xF000_0000 in
  let d = Devices.Console.device c in
  d.Bus.write32 Devices.Console.reg_tx (Char.code 'h');
  d.Bus.write32 Devices.Console.reg_tx (Char.code 'i');
  Alcotest.(check string) "output" "hi" (Devices.Console.output c);
  check_int "status ready" 1 (d.Bus.read32 Devices.Console.reg_status);
  Devices.Console.clear c;
  Alcotest.(check string) "cleared" "" (Devices.Console.output c)

let test_nic_periodic () =
  let intc = Intc.create () in
  let nic =
    Devices.Nic.create ~base:0xF000_0100 ~intc
      ~schedule:(Devices.Nic.Periodic { start = 10; period = 5; count = 3 })
  in
  let d = Devices.Nic.device nic in
  d.Bus.tick ~cycle:9;
  check_int "nothing yet" 0 (Devices.Nic.queued nic);
  d.Bus.tick ~cycle:10;
  check_int "first" 1 (Devices.Nic.queued nic);
  d.Bus.tick ~cycle:20;
  check_int "catch up" 3 (Devices.Nic.queued nic);
  check_int "arrived" 3 (Devices.Nic.arrived nic);
  check_int "head seq" 0 (d.Bus.read32 Devices.Nic.reg_rx_seq);
  d.Bus.write32 Devices.Nic.reg_rx_pop 1;
  check_int "pop" 2 (Devices.Nic.queued nic);
  check_int "next seq" 1 (d.Bus.read32 Devices.Nic.reg_rx_seq);
  check_int "delivered" 1 (Devices.Nic.delivered nic);
  check_int "latency of first" 10 (List.hd (Devices.Nic.latencies nic));
  check_bool "not done" true (not (Devices.Nic.done_sending nic))

let test_nic_interrupt () =
  let intc = Intc.create () in
  let nic =
    Devices.Nic.create ~base:0xF000_0100 ~intc
      ~schedule:(Devices.Nic.At [ 5 ])
  in
  let d = Devices.Nic.device nic in
  d.Bus.tick ~cycle:5;
  check_bool "no irq when disabled" true
    (Intc.pending intc land (1 lsl Intc.nic_irq) = 0);
  let nic2 =
    Devices.Nic.create ~base:0xF000_0100 ~intc
      ~schedule:(Devices.Nic.At [ 6 ])
  in
  let d2 = Devices.Nic.device nic2 in
  d2.Bus.write32 Devices.Nic.reg_irq_ctrl 1;
  d2.Bus.tick ~cycle:6;
  check_bool "irq raised" true
    (Intc.pending intc land (1 lsl Intc.nic_irq) <> 0)

let test_nic_unsorted_schedule () =
  let intc = Intc.create () in
  let nic =
    Devices.Nic.create ~base:0xF000_0100 ~intc
      ~schedule:(Devices.Nic.At [ 30; 10; 20 ])
  in
  let d = Devices.Nic.device nic in
  d.Bus.tick ~cycle:15;
  check_int "sorted internally" 1 (Devices.Nic.queued nic);
  d.Bus.tick ~cycle:35;
  check_int "all arrived" 3 (Devices.Nic.arrived nic);
  check_bool "schedule drained" true
    (Devices.Nic.done_sending nic = false);
  d.Bus.write32 Devices.Nic.reg_rx_pop 1;
  d.Bus.write32 Devices.Nic.reg_rx_pop 1;
  d.Bus.write32 Devices.Nic.reg_rx_pop 1;
  check_bool "done after drain" true (Devices.Nic.done_sending nic)

let test_dma () =
  let mem = Phys_mem.create ~size:4096 in
  let dma = Devices.Dma.create ~mem ~writes:[ (5, 0x100, 0xAB); (3, 0x104, 0xCD) ] in
  let d = Devices.Dma.device dma in
  d.Bus.tick ~cycle:4;
  check_int "early write done" 0xCD (Phys_mem.read32 mem 0x104);
  check_int "later not yet" 0 (Phys_mem.read32 mem 0x100);
  d.Bus.tick ~cycle:5;
  check_int "second write" 0xAB (Phys_mem.read32 mem 0x100);
  check_int "count" 2 (Devices.Dma.performed dma)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_basic () =
  let c = Cache.create { Cache.lines = 4; line_bytes = 16; miss_penalty = 10 } in
  check_bool "cold miss" false (Cache.access c ~addr:0x100);
  check_bool "warm hit" true (Cache.access c ~addr:0x100);
  check_bool "same line hit" true (Cache.access c ~addr:0x10C);
  check_bool "next line misses" false (Cache.access c ~addr:0x110);
  check_int "hits" 2 (Cache.hits c);
  check_int "misses" 2 (Cache.misses c)

let test_cache_conflict_eviction () =
  let c = Cache.create { Cache.lines = 4; line_bytes = 16; miss_penalty = 10 } in
  ignore (Cache.access c ~addr:0x000);
  (* 4 lines * 16 bytes = 64-byte period: 0x40 maps to the same set *)
  ignore (Cache.access c ~addr:0x040);
  check_bool "evicted by conflict" false (Cache.access c ~addr:0x000);
  check_int "still bounded" 1 (Cache.resident_lines c)

let test_cache_probe_flush () =
  let c = Cache.create { Cache.lines = 4; line_bytes = 16; miss_penalty = 10 } in
  check_bool "probe does not fill" false (Cache.probe c ~addr:0x200);
  check_bool "still cold" false (Cache.access c ~addr:0x200);
  check_bool "probe sees it now" true (Cache.probe c ~addr:0x200);
  Cache.flush c;
  check_bool "flushed" false (Cache.probe c ~addr:0x200);
  check_int "counters survive flush" 1 (Cache.misses c)

(* The index/tag split uses shifts and masks; replay address streams
   against a div/mod model of a direct-mapped cache and require
   identical hit/miss accounting for several geometries. *)
let test_cache_split_shift () =
  let geometries =
    [ (1, 4); (4, 16); (8, 16); (16, 64); (64, 32); (2, 128) ]
  in
  List.iter
    (fun (lines, line_bytes) ->
       let c = Cache.create { Cache.lines; line_bytes; miss_penalty = 1 } in
       let model = Array.make lines (-1) in
       let model_hits = ref 0 and model_misses = ref 0 in
       let seed = ref 123456789 in
       for _ = 1 to 2000 do
         (* xorshift; addresses spread over 1 MiB *)
         seed := !seed lxor (!seed lsl 13);
         seed := !seed lxor (!seed lsr 17);
         seed := !seed lxor (!seed lsl 5);
         let addr = !seed land 0xFFFFF in
         let line = addr / line_bytes in
         let index = line mod lines and tag = line / lines in
         if model.(index) = tag then incr model_hits
         else begin
           model.(index) <- tag;
           incr model_misses
         end;
         ignore (Cache.access c ~addr)
       done;
       let name fmt =
         Printf.sprintf "%dx%dB %s" lines line_bytes fmt
       in
       check_int (name "hits") !model_hits (Cache.hits c);
       check_int (name "misses") !model_misses (Cache.misses c))
    geometries

let test_cache_bad_config () =
  check_bool "non-pow2 rejected" true
    (try ignore (Cache.create { Cache.lines = 3; line_bytes = 16;
                                miss_penalty = 1 });
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "hw"
    [
      ( "phys_mem",
        [ Alcotest.test_case "rw" `Quick test_mem_rw;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "image" `Quick test_mem_image ] );
      ( "bus",
        [ Alcotest.test_case "ram" `Quick test_bus_ram;
          Alcotest.test_case "mmio" `Quick test_bus_mmio;
          Alcotest.test_case "overlap" `Quick test_bus_overlap_rejected ] );
      ( "tlb",
        [ Alcotest.test_case "lookup" `Quick test_tlb_lookup;
          Alcotest.test_case "global" `Quick test_tlb_global;
          Alcotest.test_case "replacement" `Quick test_tlb_replacement;
          Alcotest.test_case "packed" `Quick test_tlb_packed ] );
      ( "mram",
        [ Alcotest.test_case "image" `Quick test_mram_image;
          Alcotest.test_case "data" `Quick test_mram_data;
          Alcotest.test_case "entries" `Quick test_mram_entry_errors ] );
      ( "mregs-intc",
        [ Alcotest.test_case "mregs" `Quick test_mregs;
          Alcotest.test_case "intc" `Quick test_intc ] );
      ( "cache",
        [ Alcotest.test_case "basic" `Quick test_cache_basic;
          Alcotest.test_case "conflict" `Quick test_cache_conflict_eviction;
          Alcotest.test_case "probe/flush" `Quick test_cache_probe_flush;
          Alcotest.test_case "split via shifts" `Quick test_cache_split_shift;
          Alcotest.test_case "bad config" `Quick test_cache_bad_config ] );
      ( "devices",
        [ Alcotest.test_case "console" `Quick test_console;
          Alcotest.test_case "nic periodic" `Quick test_nic_periodic;
          Alcotest.test_case "nic irq" `Quick test_nic_interrupt;
          Alcotest.test_case "nic unsorted" `Quick test_nic_unsorted_schedule;
          Alcotest.test_case "dma" `Quick test_dma ] );
    ]
