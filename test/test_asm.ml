(* Assembler tests: lexing, expressions, directives, pseudo-instruction
   expansion, label resolution, images and disassembly. *)

open Metal_asm

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let ok_img ?origin src =
  match Asm.assemble ?origin src with
  | Ok img -> img
  | Error e -> Alcotest.fail (Asm.error_to_string e)

let err_line ?origin src =
  match Asm.assemble ?origin src with
  | Ok _ -> Alcotest.fail "expected assembly error"
  | Error e -> e.Asm.line

let word_of img addr =
  match Image.word_at img addr with
  | Some w -> w
  | None -> Alcotest.fail (Printf.sprintf "no word at 0x%x" addr)

let decode_at img addr = Decode.decode_exn (word_of img addr)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lex_basic () =
  match Lex.tokenize "  addi a0, a1, 42  # comment" with
  | Ok [ Lex.Ident "addi"; Lex.Ident "a0"; Lex.Comma; Lex.Ident "a1";
         Lex.Comma; Lex.Int 42 ] -> ()
  | Ok toks ->
    Alcotest.fail
      (String.concat " " (List.map Lex.token_to_string toks))
  | Error e -> Alcotest.fail e

let test_lex_literals () =
  let num s =
    match Lex.tokenize s with
    | Ok [ Lex.Int v ] -> v
    | Ok _ | Error _ -> Alcotest.fail ("lex " ^ s)
  in
  check_int "hex" 0xFF (num "0xFF");
  check_int "binary" 5 (num "0b101");
  check_int "octal" 8 (num "0o10");
  check_int "char" 65 (num "'A'");
  check_int "escaped char" 10 (num "'\\n'")

let test_lex_strings () =
  match Lex.tokenize {|.asciiz "hi\n\t\"x\""|} with
  | Ok [ Lex.Ident ".asciiz"; Lex.Str s ] -> check_str "escapes" "hi\n\t\"x\"" s
  | Ok _ -> Alcotest.fail "unexpected tokens"
  | Error e -> Alcotest.fail e

let test_lex_rejects () =
  check_bool "stray char" true (Result.is_error (Lex.tokenize "addi a0, a1, @"));
  check_bool "unterminated string" true
    (Result.is_error (Lex.tokenize ".asciiz \"oops"));
  check_bool "bad number" true (Result.is_error (Lex.tokenize "li a0, 0xZZ"))

let test_lex_comments () =
  let empty s =
    match Lex.tokenize s with Ok [] -> true | Ok _ | Error _ -> false
  in
  check_bool "hash" true (empty "# hi");
  check_bool "semicolon" true (empty "; hi");
  check_bool "slashes" true (empty "// hi");
  check_bool "hash in string kept" true
    (match Lex.tokenize {|.ascii "#x"|} with
     | Ok [ _; Lex.Str "#x" ] -> true
     | Ok _ | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Expressions *)

let eval_str s =
  match Lex.tokenize s with
  | Error e -> Alcotest.fail e
  | Ok toks ->
    begin match Expr.parse toks with
    | Error e -> Alcotest.fail e
    | Ok (e, []) ->
      begin match Expr.eval ~lookup:(fun n -> if n = "sym" then Some 0x1000 else None) e with
      | Ok v -> v
      | Error e -> Alcotest.fail e
      end
    | Ok (_, _) -> Alcotest.fail "trailing tokens"
    end

let test_expr_arith () =
  check_int "precedence" 14 (eval_str "2 + 3 * 4");
  check_int "parens" 20 (eval_str "(2 + 3) * 4");
  check_int "unary minus" (-6) (eval_str "-2 * 3");
  check_int "division" 3 (eval_str "10 / 3");
  check_int "symbol" 0x1004 (eval_str "sym + 4");
  check_int "sub chain" 1 (eval_str "4 - 2 - 1")

let test_expr_hi_lo () =
  let v = 0x12345FFF in
  let hi = eval_str (Printf.sprintf "%%hi(%d)" v) in
  let lo = eval_str (Printf.sprintf "%%lo(%d)" v) in
  check_int "hi/lo reconstruct" v (Word.of_int ((hi lsl 12) + lo));
  (* %lo is sign-extended, so %hi must round up. *)
  check_int "hi rounds" 0x12346 hi

let test_expr_errors () =
  let fails s =
    match Lex.tokenize s with
    | Error _ -> true
    | Ok toks ->
      begin match Expr.parse toks with
      | Error _ -> true
      | Ok (e, []) ->
        Result.is_error (Expr.eval ~lookup:(fun _ -> None) e)
      | Ok _ -> true
      end
  in
  check_bool "undefined symbol" true (fails "nosuch + 1");
  check_bool "div by zero" true (fails "1 / 0");
  check_bool "dangling op" true (fails "1 +")

(* ------------------------------------------------------------------ *)
(* Assembly: instructions and labels *)

let test_asm_simple () =
  let img = ok_img "addi a0, zero, 42\nebreak\n" in
  check_str "addi" "addi a0, zero, 42" (Instr.to_string (decode_at img 0));
  check_str "ebreak" "ebreak" (Instr.to_string (decode_at img 4));
  check_int "size" 8 (Image.size img)

let test_asm_labels () =
  let img = ok_img "start:\n  j end\n  nop\nend:\n  ebreak\n" in
  (match decode_at img 0 with
   | Instr.Jal { rd = 0; offset } -> check_int "jump offset" 8 offset
   | i -> Alcotest.fail (Instr.to_string i));
  Alcotest.(check (option int)) "start" (Some 0) (Image.find_symbol img "start");
  Alcotest.(check (option int)) "end" (Some 8) (Image.find_symbol img "end")

let test_asm_branch_backward () =
  let img = ok_img "loop:\n  addi t0, t0, -1\n  bnez t0, loop\n  ebreak\n" in
  match decode_at img 4 with
  | Instr.Branch { cond = Instr.Bne; rs1 = 5; rs2 = 0; offset } ->
    check_int "backward" (-4) offset
  | i -> Alcotest.fail (Instr.to_string i)

let test_asm_li_small_large () =
  let img = ok_img "li a0, 42\nli a1, 0x12345678\nebreak\n" in
  check_str "small li" "addi a0, zero, 42" (Instr.to_string (decode_at img 0));
  (match decode_at img 4 with
   | Instr.Lui { rd = 11; _ } -> ()
   | i -> Alcotest.fail ("expected lui: " ^ Instr.to_string i));
  (match decode_at img 8 with
   | Instr.Op_imm { op = Instr.Add; rd = 11; rs1 = 11; _ } -> ()
   | i -> Alcotest.fail ("expected addi: " ^ Instr.to_string i));
  check_str "after" "ebreak" (Instr.to_string (decode_at img 12))

let test_asm_li_negative () =
  let img = ok_img "li a0, -1\nli a1, -0x80000000\n" in
  check_str "li -1" "addi a0, zero, -1" (Instr.to_string (decode_at img 0));
  match decode_at img 4 with
  | Instr.Lui { rd = 11; imm = 0x80000 } -> ()
  | i -> Alcotest.fail (Instr.to_string i)

let test_asm_la () =
  let img = ok_img ".org 0x1000\nla a0, data\nebreak\ndata: .word 7\n" in
  (match decode_at img 0x1000 with
   | Instr.Lui { rd = 10; imm } -> check_int "hi" 0x1 imm
   | i -> Alcotest.fail (Instr.to_string i));
  match decode_at img 0x1004 with
  | Instr.Op_imm { op = Instr.Add; rd = 10; rs1 = 10; imm } ->
    check_int "lo" 0xC imm
  | i -> Alcotest.fail (Instr.to_string i)

let test_asm_mem_operands () =
  let img = ok_img "lw a0, 8(sp)\nsw a0, -4(s0)\nlb t0, (a1)\n" in
  check_str "lw" "lw a0, 8(sp)" (Instr.to_string (decode_at img 0));
  check_str "sw" "sw a0, -4(s0)" (Instr.to_string (decode_at img 4));
  check_str "lb empty disp" "lb t0, 0(a1)" (Instr.to_string (decode_at img 8))

let test_asm_pseudo () =
  let img =
    ok_img
      "mv a0, a1\nnot a2, a3\nneg a4, a5\nseqz a6, a7\nsnez t0, t1\n\
       ret\njr t2\ncall target\ntail target\ntarget:\nebreak\n"
  in
  check_str "mv" "addi a0, a1, 0" (Instr.to_string (decode_at img 0));
  check_str "not" "xori a2, a3, -1" (Instr.to_string (decode_at img 4));
  check_str "neg" "sub a4, zero, a5" (Instr.to_string (decode_at img 8));
  check_str "seqz" "sltiu a6, a7, 1" (Instr.to_string (decode_at img 12));
  check_str "snez" "sltu t0, zero, t1" (Instr.to_string (decode_at img 16));
  check_str "ret" "jalr zero, 0(ra)" (Instr.to_string (decode_at img 20));
  check_str "jr" "jalr zero, 0(t2)" (Instr.to_string (decode_at img 24));
  (match decode_at img 28 with
   | Instr.Jal { rd = 1; offset = 8 } -> ()
   | i -> Alcotest.fail ("call: " ^ Instr.to_string i));
  match decode_at img 32 with
  | Instr.Jal { rd = 0; offset = 4 } -> ()
  | i -> Alcotest.fail ("tail: " ^ Instr.to_string i)

let test_asm_branch_pseudo () =
  let img =
    ok_img "x:\nbeqz a0, x\nblez a1, x\nbgtz a2, x\nbgt a3, a4, x\nble a5, a6, x\n"
  in
  check_str "beqz" "beq a0, zero, 0" (Instr.to_string (decode_at img 0));
  check_str "blez" "bge zero, a1, -4" (Instr.to_string (decode_at img 4));
  check_str "bgtz" "blt zero, a2, -8" (Instr.to_string (decode_at img 8));
  check_str "bgt swaps" "blt a4, a3, -12" (Instr.to_string (decode_at img 12));
  check_str "ble swaps" "bge a6, a5, -16" (Instr.to_string (decode_at img 16))

let test_asm_metal_instrs () =
  let img =
    ok_img
      "menter 5\nmexit\nrmr t0, m31\nwmr m0, t1\nmld a0, 8(t2)\n\
       mst a0, 12(t3)\nphysld a1, (t4)\nphysst a1, 4(t5)\ntlbw t0, t1\n\
       tlbflush t0\ntlbprobe a2, t6\ngprr a3, t0\ngprw t0, a4\n\
       iceptset t0, t1\niceptclr t0\nmcsrr a5, cycle\nmcsrw paging, a6\n\
       mcsrr a7, exc_handler[ecall]\n"
  in
  check_str "menter" "menter 5" (Instr.to_string (decode_at img 0));
  check_str "mexit" "mexit" (Instr.to_string (decode_at img 4));
  check_str "rmr" "rmr t0, m31" (Instr.to_string (decode_at img 8));
  check_str "wmr" "wmr m0, t1" (Instr.to_string (decode_at img 12));
  check_str "mld" "mld a0, 8(t2)" (Instr.to_string (decode_at img 16));
  check_str "mcsrr named" "mcsrr a5, cycle" (Instr.to_string (decode_at img 60));
  check_str "mcsrw named" "mcsrw paging, a6" (Instr.to_string (decode_at img 64));
  check_str "mcsrr indexed" "mcsrr a7, exc_handler[ecall]"
    (Instr.to_string (decode_at img 68))

(* ------------------------------------------------------------------ *)
(* Directives *)

let test_asm_data_directives () =
  let img =
    ok_img
      ".org 0x100\n.word 1, 2, 0xFFFFFFFF\n.half 0x1234\n.byte 1, 2\n\
       .align 2\n.asciiz \"ok\"\n"
  in
  check_int "word0" 1 (word_of img 0x100);
  check_int "word2" 0xFFFFFFFF (word_of img 0x108);
  (match Image.byte_at img 0x10C with
   | Some b -> check_int "half lo" 0x34 b
   | None -> Alcotest.fail "missing half");
  (match Image.byte_at img 0x110 with
   | Some b -> check_int "aligned byte" (Char.code 'o') b
   | None -> Alcotest.fail "missing string");
  match Image.byte_at img 0x112 with
  | Some b -> check_int "nul" 0 b
  | None -> Alcotest.fail "missing nul"

let test_asm_equ_space () =
  let img =
    ok_img ".equ BASE, 0x200\n.equ SIZE, 4 * 8\n.org BASE\n.space SIZE\nend:\n.word end\n"
  in
  check_int "end symbol after space" (0x200 + 32) (word_of img (0x200 + 32))

let test_asm_mentry () =
  let img =
    ok_img
      ".mentry 0, ma\n.mentry 7, mb\nma: mexit\nmb: mexit\n"
  in
  Alcotest.(check (list (pair int int))) "entries" [ (0, 0); (7, 4) ]
    img.Image.mentries

let test_asm_dot_symbol () =
  let img = ok_img ".org 0x40\nhere: .word .\n" in
  check_int "dot is current address" 0x40 (word_of img 0x40)

let test_asm_mbound () =
  let img =
    ok_img
      ".equ N, 4\n.mentry 0, f\nf:\nli t0, 4\n.mbound N + 1\nhead:\n\
       addi t0, t0, -1\nbne t0, zero, head\nmexit\n"
  in
  Alcotest.(check (list (pair int int))) "mbounds" [ (4, 5) ]
    img.Image.mbounds;
  (match Asm.assemble ".mbound 0\nnop\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail ".mbound 0 must be rejected")

(* ------------------------------------------------------------------ *)
(* Errors *)

let test_asm_errors () =
  check_int "unknown instr" 1 (err_line "frobnicate a0\n");
  check_int "unknown reg" 1 (err_line "addi q0, a0, 1\n");
  check_int "imm too big" 1 (err_line "addi a0, a0, 5000\n");
  check_int "dup label line" 3 (err_line "x:\nnop\nx:\n");
  check_int "undef label" 1 (err_line "j nowhere\n");
  check_int "overlap" 4 (err_line ".org 0\n.word 1\n.org 0\n.word 2\n");
  check_int "menter range" 1 (err_line "menter 64\n");
  check_int "bad directive" 1 (err_line ".bogus 1\n");
  check_int "forward equ" 1 (err_line ".equ A, B\n.equ B, 1\n")

(* ------------------------------------------------------------------ *)
(* Disassembler *)

let test_disasm_roundtrip () =
  let src = "addi a0, zero, 1\nbeq a0, a1, 8\nlw t0, 4(sp)\nebreak\n" in
  let img = ok_img src in
  let dis = Disasm.image img in
  check_bool "contains addi" true
    (Tutil.contains dis "addi a0, zero, 1");
  check_bool "contains lw" true (Tutil.contains dis "lw t0, 4(sp)")

(* A chunk whose length is not a multiple of 4 used to lose its tail
   bytes in the listing; they must come out as .byte lines. *)
let test_disasm_tail () =
  let img = ok_img "addi t0, t0, 1\n.byte 0xAA, 0xBB, 0xCC\n" in
  let dis = Disasm.image img in
  check_bool "word listed" true (Tutil.contains dis "addi t0, t0, 1");
  check_bool "tail byte 1" true (Tutil.contains dis ".byte 0xaa");
  check_bool "tail byte 2" true (Tutil.contains dis ".byte 0xbb");
  check_bool "tail byte 3" true (Tutil.contains dis ".byte 0xcc")

(* The property: assembling the rendered form of any encodable
   instruction reproduces the same word. *)
let prop_render_assemble =
  QCheck.Test.make ~name:"render/assemble fixpoint" ~count:500
    (QCheck.make ~print:Instr.to_string
       QCheck.Gen.(
         let reg = int_range 0 31 in
         let imm12 = int_range (-2048) 2047 in
         oneof
           [ map3 (fun rd rs1 imm ->
                 Instr.Op_imm { op = Instr.Add; rd; rs1; imm })
               reg reg imm12;
             map3 (fun rd rs1 offset -> Instr.Load
                      { width = Instr.Word; unsigned = false; rd; rs1; offset })
               reg reg imm12;
             map3 (fun rs2 rs1 offset -> Instr.Store
                      { width = Instr.Word; rs2; rs1; offset })
               reg reg imm12;
             map3 (fun rd rs1 rs2 -> Instr.Op
                      { op = Instr.Xor; rd; rs1; rs2 })
               reg reg reg ]))
    (fun i ->
       let src = Instr.to_string i ^ "\n" in
       match Asm.assemble src with
       | Error _ -> false
       | Ok img ->
         Image.word_at img 0 = Some (Encode.encode_exn i))

let () =
  Alcotest.run "asm"
    [
      ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "literals" `Quick test_lex_literals;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "rejects" `Quick test_lex_rejects;
          Alcotest.test_case "comments" `Quick test_lex_comments ] );
      ( "expr",
        [ Alcotest.test_case "arith" `Quick test_expr_arith;
          Alcotest.test_case "hi/lo" `Quick test_expr_hi_lo;
          Alcotest.test_case "errors" `Quick test_expr_errors ] );
      ( "instructions",
        [ Alcotest.test_case "simple" `Quick test_asm_simple;
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "backward branch" `Quick test_asm_branch_backward;
          Alcotest.test_case "li sizes" `Quick test_asm_li_small_large;
          Alcotest.test_case "li negative" `Quick test_asm_li_negative;
          Alcotest.test_case "la" `Quick test_asm_la;
          Alcotest.test_case "memory operands" `Quick test_asm_mem_operands;
          Alcotest.test_case "pseudo" `Quick test_asm_pseudo;
          Alcotest.test_case "branch pseudo" `Quick test_asm_branch_pseudo;
          Alcotest.test_case "metal" `Quick test_asm_metal_instrs ] );
      ( "directives",
        [ Alcotest.test_case "data" `Quick test_asm_data_directives;
          Alcotest.test_case "equ/space" `Quick test_asm_equ_space;
          Alcotest.test_case "mentry" `Quick test_asm_mentry;
          Alcotest.test_case "dot" `Quick test_asm_dot_symbol;
          Alcotest.test_case "mbound" `Quick test_asm_mbound ] );
      ( "errors", [ Alcotest.test_case "diagnostics" `Quick test_asm_errors ] );
      ( "disasm",
        Alcotest.test_case "roundtrip" `Quick test_disasm_roundtrip
        :: Alcotest.test_case "unaligned tail" `Quick test_disasm_tail
        :: List.map QCheck_alcotest.to_alcotest [ prop_render_assemble ] );
    ]
