(* Unit tests for the observability layer (lib/trace): the event ring,
   the live collector's cycle attribution, the Chrome trace_event
   exporter (validated with the library's own JSON reader, including
   per-track timestamp monotonicity), and the mergeable metrics
   snapshot.  The cross-stepper stream-identity properties live in
   test_differential. *)

open Metal_cpu
module Trace = Metal_trace

(* (cycle, kind, a, b) events as an Alcotest testable *)
let event_t : (int * int * int * int) Alcotest.testable =
  Alcotest.testable
    (fun fmt (c, k, a, b) -> Format.fprintf fmt "(%d, %d, %d, %d)" c k a b)
    ( = )

(* ------------------------------------------------------------------ *)
(* Ring: fixed capacity, oldest-first iteration, wraparound keeps the
   newest events and counts the drops. *)

let test_ring_basic () =
  let r = Trace.Ring.create ~capacity:8 in
  Alcotest.(check int) "capacity" 8 (Trace.Ring.capacity r);
  Alcotest.(check int) "empty length" 0 (Trace.Ring.length r);
  Alcotest.(check (list event_t))
    "empty list" []
    (Trace.Ring.to_list r);
  for i = 1 to 5 do
    Trace.Ring.record r ~cycle:i ~kind:Trace.Event.retire ~a:(4 * i) ~b:0
  done;
  Alcotest.(check int) "length" 5 (Trace.Ring.length r);
  Alcotest.(check int) "total" 5 (Trace.Ring.total r);
  Alcotest.(check int) "dropped" 0 (Trace.Ring.dropped r);
  (match Trace.Ring.to_list r with
   | (c, k, a, b) :: _ ->
     Alcotest.(check event_t)
       "oldest first"
       (1, Trace.Event.retire, 4, 0)
       (c, k, a, b)
   | [] -> Alcotest.fail "empty");
  Trace.Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Trace.Ring.length r)

let test_ring_wraparound () =
  let cap = 8 in
  let r = Trace.Ring.create ~capacity:cap in
  let n = 20 in
  for i = 0 to n - 1 do
    Trace.Ring.record r ~cycle:i ~kind:(i mod Trace.Event.count) ~a:i ~b:(-i)
  done;
  Alcotest.(check int) "length capped" cap (Trace.Ring.length r);
  Alcotest.(check int) "total keeps counting" n (Trace.Ring.total r);
  Alcotest.(check int) "dropped" (n - cap) (Trace.Ring.dropped r);
  let l = Trace.Ring.to_list r in
  Alcotest.(check int) "list length" cap (List.length l);
  List.iteri
    (fun k (c, kind, a, b) ->
       let i = n - cap + k in
       Alcotest.(check event_t)
         (Printf.sprintf "surviving event %d" k)
         (i, i mod Trace.Event.count, i, -i)
         (c, kind, a, b))
    l;
  (* iter agrees with to_list *)
  let via_iter = ref [] in
  Trace.Ring.iter r (fun ~cycle ~kind ~a ~b ->
      via_iter := (cycle, kind, a, b) :: !via_iter);
  Alcotest.(check (list event_t))
    "iter = to_list" l
    (List.rev !via_iter)

(* ------------------------------------------------------------------ *)
(* Collector attribution on a directed Metal workload: the trace_demo
   loop crosses into mroutine 1 exactly eight times, each crossing
   costing the same number of cycles, so the histogram is a single
   bucket of mass eight and the attribution splits are exact. *)

let demo_src =
  "start:\nli s0, 8\nloop:\nmenter 1\naddi s0, s0, -1\n\
   bne s0, zero, loop\nebreak\n"

let demo_mcode =
  ".mentry 1, bump\n\
   bump:\nwmr m11, t0\nrmr t0, m10\naddi t0, t0, 1\nwmr m10, t0\n\
   rmr t0, m11\nmexit\n"

let assemble_exn src =
  match Metal_asm.Asm.assemble src with
  | Ok img -> img
  | Error e -> failwith (Metal_asm.Asm.error_to_string e)

let run_demo ?(collect = true) ?(capacity = 4096) () =
  let m = Machine.create ~config:Config.default () in
  (match Machine.load_mcode m (assemble_exn demo_mcode) with
   | Ok () -> ()
   | Error e -> failwith e);
  (match Machine.load_image m (assemble_exn demo_src) with
   | Ok () -> ()
   | Error e -> failwith e);
  Machine.set_pc m 0;
  let c =
    if collect then begin
      let c = Trace.Collector.create ~capacity () in
      Machine.set_probe m (Trace.Collector.probe c);
      Some c
    end
    else None
  in
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_ebreak _) -> ()
   | Some h -> failwith (Machine.halted_to_string h)
   | None -> failwith "no halt");
  (m, c)

let test_collector_attribution () =
  let m, c = run_demo () in
  let c = Option.get c in
  let mx = Trace.Collector.metrics c in
  let open Trace.Metrics in
  (match mx.mroutines with
   | [ mr ] ->
     Alcotest.(check int) "entry index" 1 mr.entry;
     Alcotest.(check int) "eight crossings" 8 mr.count;
     Alcotest.(check bool)
       "steady loop: min = max" true
       (mr.min_cycles = mr.max_cycles);
     Alcotest.(check int)
       "total = count * latency" (8 * mr.min_cycles) mr.total_cycles;
     Alcotest.(check (list (pair int int)))
       "histogram: one bucket of mass 8"
       [ (mr.min_cycles, 8) ]
       mr.latencies
   | l ->
     Alcotest.fail (Printf.sprintf "expected 1 mroutine, got %d" (List.length l)));
  Alcotest.(check int)
    "instruction split covers the run" m.Machine.stats.Stats.instructions
    (mx.user_instructions + mx.metal_instructions);
  Alcotest.(check bool) "metal instructions seen" true (mx.metal_instructions > 0);
  Alcotest.(check int)
    "mode split covers the run" m.Machine.stats.Stats.cycles
    (mx.user_cycles + mx.metal_cycles);
  Alcotest.(check int)
    "eight mode_enter events" 8
    (List.assoc "mode_enter" mx.event_counts);
  Alcotest.(check int)
    "eight mode_exit events" 8
    (List.assoc "mode_exit" mx.event_counts);
  Alcotest.(check int) "no drops" 0 mx.events_dropped;
  Alcotest.(check int)
    "recorded = ring total"
    (Trace.Ring.total (Trace.Collector.ring c))
    mx.events_recorded

(* A machine that never had a probe installed and one with the probe
   cleared must behave identically — and identically to the traced run:
   observation must not perturb the simulation. *)
let test_observer_invisible () =
  let traced, _ = run_demo ~collect:true () in
  let bare, _ = run_demo ~collect:false () in
  Alcotest.(check string)
    "stats identical with and without probe"
    (Stats.to_string bare.Machine.stats)
    (Stats.to_string traced.Machine.stats);
  Alcotest.(check bool)
    "registers identical" true
    (Array.for_all2 ( = ) bare.Machine.regs traced.Machine.regs)

(* Ring overflow under a real workload: a tiny ring must keep the exact
   counters (they live in the collector, not the ring) while reporting
   the drops. *)
let test_collector_small_ring () =
  let _, c_small = run_demo ~capacity:4 () in
  let _, c_big = run_demo ~capacity:4096 () in
  let small = Trace.Collector.metrics (Option.get c_small) in
  let big = Trace.Collector.metrics (Option.get c_big) in
  let open Trace.Metrics in
  Alcotest.(check bool) "events dropped" true (small.events_dropped > 0);
  Alcotest.(check int) "no drops on big ring" 0 big.events_dropped;
  Alcotest.(check int)
    "same events recorded" big.events_recorded small.events_recorded;
  (* drop count aside, the metrics are identical: counters do not
     depend on ring capacity *)
  Alcotest.(check bool)
    "counters survive wraparound" true
    (Trace.Metrics.equal big { small with events_dropped = 0 })

(* ------------------------------------------------------------------ *)
(* Chrome exporter: the emitted trace must parse with the library's
   own JSON reader, carry one metadata record per track, keep
   timestamps monotone per track, and render each completed
   menter→mexit round trip as a duration span on the mode track. *)

let num_field name j =
  match Option.bind (Trace.Json.member name j) Trace.Json.to_num with
  | Some f -> int_of_float f
  | None -> Alcotest.fail (Printf.sprintf "missing numeric %S" name)

let str_field name j =
  match Option.bind (Trace.Json.member name j) Trace.Json.to_string with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "missing string %S" name)

let test_chrome_export () =
  let _, c = run_demo () in
  let ring = Trace.Collector.ring (Option.get c) in
  let s = Trace.Chrome.to_string ring in
  match Trace.Json.parse s with
  | Error e -> Alcotest.fail ("trace does not parse: " ^ e)
  | Ok j ->
    let events =
      match Trace.Json.member "traceEvents" j with
      | Some a -> Trace.Json.to_list a
      | None -> Alcotest.fail "no traceEvents array"
    in
    Alcotest.(check bool) "trace non-empty" true (List.length events > 0);
    let last_ts = Hashtbl.create 8 in
    let mode_spans = ref 0 in
    List.iter
      (fun ev ->
         match str_field "ph" ev with
         | "M" -> ()  (* metadata carries no timestamp *)
         | ph ->
           let tid = num_field "tid" ev and ts = num_field "ts" ev in
           (match Hashtbl.find_opt last_ts tid with
            | Some prev ->
              if ts < prev then
                Alcotest.fail
                  (Printf.sprintf "tid %d: ts %d after %d" tid ts prev)
            | None -> ());
           Hashtbl.replace last_ts tid ts;
           if ph = "X" && tid = Trace.Chrome.tid_mode then begin
             incr mode_spans;
             Alcotest.(check bool)
               "span has positive duration" true
               (num_field "dur" ev >= 1)
           end)
      events;
    Alcotest.(check int) "eight mroutine spans on the mode track" 8 !mode_spans;
    let metadata =
      List.filter (fun ev -> str_field "ph" ev = "M") events
    in
    Alcotest.(check int) "six thread_name records" 6 (List.length metadata)

(* Fault and ECC events render as instant events with symbolic args.
   The exact fragments are pinned: Perfetto queries and the cram tests
   key on these names, so a rendering change must be deliberate. *)
let test_chrome_inject_ecc_instants () =
  let r = Trace.Ring.create ~capacity:16 in
  Trace.Ring.record r ~cycle:42 ~kind:Trace.Event.inject ~a:2 ~b:7;
  Trace.Ring.record r ~cycle:43 ~kind:Trace.Event.ecc_correct ~a:1 ~b:5;
  let s = Trace.Chrome.to_string r in
  let contains fragment =
    let fl = String.length fragment and sl = String.length s in
    let rec go i =
      i + fl <= sl && (String.sub s i fl = fragment || go (i + 1))
    in
    Alcotest.(check bool) (Printf.sprintf "contains %s" fragment) true (go 0)
  in
  contains
    "{\"ph\": \"i\", \"pid\": 1, \"tid\": 6, \"ts\": 42, \"s\": \"t\", \
     \"name\": \"inject\", \"args\": {\"class\": \"mreg\", \"detail\": 7}}";
  contains
    "{\"ph\": \"i\", \"pid\": 1, \"tid\": 4, \"ts\": 43, \"s\": \"t\", \
     \"name\": \"ecc_correct\", \"args\": {\"structure\": \"mreg\", \
     \"at\": 5}}";
  (* the document still parses *)
  match Trace.Json.parse s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("trace does not parse: " ^ e)

(* ------------------------------------------------------------------ *)
(* Metrics algebra: [empty] is the merge identity, merge sums counters
   pointwise (min/max for the latency bounds), and the JSON rendering
   round-trips through the reader. *)

let test_metrics_merge () =
  let _, c = run_demo () in
  let mx = Trace.Collector.metrics (Option.get c) in
  Alcotest.(check bool)
    "empty is left identity" true
    (Trace.Metrics.equal mx (Trace.Metrics.merge Trace.Metrics.empty mx));
  Alcotest.(check bool)
    "empty is right identity" true
    (Trace.Metrics.equal mx (Trace.Metrics.merge mx Trace.Metrics.empty));
  let d = Trace.Metrics.merge mx mx in
  let open Trace.Metrics in
  Alcotest.(check int) "cycles doubled" (2 * mx.user_cycles) d.user_cycles;
  Alcotest.(check int)
    "instructions doubled"
    (2 * (mx.user_instructions + mx.metal_instructions))
    (d.user_instructions + d.metal_instructions);
  (match (mx.mroutines, d.mroutines) with
   | [ a ], [ b ] ->
     Alcotest.(check int) "calls doubled" (2 * a.count) b.count;
     Alcotest.(check int) "min unchanged" a.min_cycles b.min_cycles;
     Alcotest.(check int) "max unchanged" a.max_cycles b.max_cycles;
     Alcotest.(check int)
       "histogram mass doubled"
       (2 * List.fold_left (fun acc (_, n) -> acc + n) 0 a.latencies)
       (List.fold_left (fun acc (_, n) -> acc + n) 0 b.latencies)
   | _ -> Alcotest.fail "expected exactly one mroutine on both sides");
  List.iter2
    (fun (k, v) (k', v') ->
       Alcotest.(check string) "event key order stable" k k';
       Alcotest.(check int) ("event " ^ k ^ " doubled") (2 * v) v')
    mx.event_counts d.event_counts

let test_metrics_json () =
  let _, c = run_demo () in
  let mx = Trace.Collector.metrics (Option.get c) in
  match Trace.Json.parse (Trace.Metrics.to_json mx) with
  | Error e -> Alcotest.fail ("metrics JSON does not parse: " ^ e)
  | Ok j ->
    Alcotest.(check string)
      "schema tag" "metal-metrics-v1"
      (str_field "schema" j);
    let open Trace.Metrics in
    Alcotest.(check int) "user_cycles" mx.user_cycles (num_field "user_cycles" j);
    Alcotest.(check int)
      "metal_cycles" mx.metal_cycles
      (num_field "metal_cycles" j);
    let mroutines =
      match Trace.Json.member "mroutines" j with
      | Some a -> Trace.Json.to_list a
      | None -> Alcotest.fail "no mroutines array"
    in
    Alcotest.(check int)
      "mroutine rows" (List.length mx.mroutines)
      (List.length mroutines)

(* The dedicated ECC/injection counters and the entry-stack drop
   counter: fed synthetic events, the counters must recount the stream
   and surface in the JSON document under their own names. *)
let test_metrics_ecc_inject_drops () =
  let c = Trace.Collector.create ~capacity:64 () in
  let p = Trace.Collector.probe c in
  p 1 Trace.Event.ecc_correct 0 0;
  p 2 Trace.Event.inject 3 0;
  p 3 Trace.Event.ecc_correct 1 0;
  (* 17 nested mode_enters overflow the 16-deep entry stack by one *)
  for i = 1 to 17 do
    p (10 + i) Trace.Event.mode_enter 1 0
  done;
  let mx = Trace.Collector.metrics c in
  let open Trace.Metrics in
  Alcotest.(check int) "ecc_corrections" 2 mx.ecc_corrections;
  Alcotest.(check int) "injections" 1 mx.injections;
  Alcotest.(check int) "dropped_entries" 1 mx.dropped_entries;
  match Trace.Json.parse (Trace.Metrics.to_json mx) with
  | Error e -> Alcotest.fail ("metrics JSON does not parse: " ^ e)
  | Ok j ->
    Alcotest.(check int) "json ecc_corrections" 2
      (num_field "ecc_corrections" j);
    Alcotest.(check int) "json injections" 1 (num_field "injections" j);
    Alcotest.(check int) "json dropped_entries" 1
      (num_field "dropped_entries" j)

(* ------------------------------------------------------------------ *)
(* The JSON reader itself: escapes, nesting, and offset-carrying
   errors. *)

let test_json_reader () =
  (match Trace.Json.parse {| {"a": [1, 2.5, -3], "s": "x\"\nA", "t": true, "n": null} |} with
   | Error e -> Alcotest.fail e
   | Ok j ->
     Alcotest.(check int) "array len" 3
       (List.length (Trace.Json.to_list (Option.get (Trace.Json.member "a" j))));
     Alcotest.(check (option string))
       "escapes" (Some "x\"\nA")
       (Option.bind (Trace.Json.member "s" j) Trace.Json.to_string));
  (match Trace.Json.parse "{\"a\": " with
   | Ok _ -> Alcotest.fail "accepted truncated document"
   | Error _ -> ());
  match Trace.Json.parse "[1, 2,]" with
  | Ok _ -> Alcotest.fail "accepted trailing comma"
  | Error _ -> ()

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [ Alcotest.test_case "record and iterate" `Quick test_ring_basic;
          Alcotest.test_case "wraparound keeps newest" `Quick
            test_ring_wraparound ] );
      ( "collector",
        [ Alcotest.test_case "mroutine attribution" `Quick
            test_collector_attribution;
          Alcotest.test_case "observer is invisible" `Quick
            test_observer_invisible;
          Alcotest.test_case "counters survive ring overflow" `Quick
            test_collector_small_ring ] );
      ( "chrome",
        [ Alcotest.test_case "valid JSON, monotone tracks, mode spans" `Quick
            test_chrome_export;
          Alcotest.test_case "inject/ecc instants pinned" `Quick
            test_chrome_inject_ecc_instants ] );
      ( "metrics",
        [ Alcotest.test_case "merge algebra" `Quick test_metrics_merge;
          Alcotest.test_case "JSON round-trip" `Quick test_metrics_json;
          Alcotest.test_case "ecc/inject/drop counters" `Quick
            test_metrics_ecc_inject_drops ] );
      ( "json",
        [ Alcotest.test_case "reader accepts/rejects" `Quick test_json_reader ] );
    ]
