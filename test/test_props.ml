(* Property tests across the stack: word arithmetic laws, assembler
   pseudo-instruction correctness (li/la materialize any 32-bit value),
   disassembler fixpoints, and a differential check of the Mgen
   compiler against a direct OCaml evaluator. *)

open Metal_cpu

let gen_word =
  QCheck.Gen.(map (fun x -> x land 0xFFFFFFFF) (int_bound max_int))

let arb_word = QCheck.make ~print:Word.to_hex gen_word

(* ------------------------------------------------------------------ *)
(* Word laws *)

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:500
    (QCheck.pair arb_word arb_word)
    (fun (a, b) -> Word.add a b = Word.add b a)

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"sub inverts add" ~count:500
    (QCheck.pair arb_word arb_word)
    (fun (a, b) -> Word.sub (Word.add a b) b = a)

let prop_neg_via_sub =
  QCheck.Test.make ~name:"0 - (0 - a) = a" ~count:500 arb_word
    (fun a -> Word.sub 0 (Word.sub 0 a) = a)

let prop_signed_unsigned_agree =
  QCheck.Test.make ~name:"signed order shifts by 2^31" ~count:500
    (QCheck.pair arb_word arb_word)
    (fun (a, b) ->
       Word.lt_signed a b
       = Word.lt_unsigned (Word.logxor a 0x80000000) (Word.logxor b 0x80000000))

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"left then logical right keeps low bits" ~count:500
    (QCheck.pair arb_word (QCheck.make (QCheck.Gen.int_range 0 31)))
    (fun (a, n) ->
       let masked = Word.logand a ((1 lsl (32 - n)) - 1) in
       Word.shift_right_logical (Word.shift_left masked n) n = masked)

let prop_sign_extend_idempotent =
  QCheck.Test.make ~name:"sign_extend idempotent through of_int" ~count:500
    (QCheck.pair (QCheck.make (QCheck.Gen.int_range 1 32)) arb_word)
    (fun (w, v) ->
       let e = Word.sign_extend ~width:w v in
       Word.sign_extend ~width:w (Word.of_int e) = e)

let prop_to_signed_of_signed =
  QCheck.Test.make ~name:"of_signed inverts to_signed" ~count:500 arb_word
    (fun a -> Word.of_signed (Word.to_signed a) = a)

(* ------------------------------------------------------------------ *)
(* li / la materialize arbitrary constants *)

let run_program src =
  let m = Machine.create () in
  let img = Metal_asm.Asm.assemble_exn src in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  Machine.set_pc m 0;
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_ebreak _) -> m
  | Some h -> failwith (Machine.halted_to_string h)
  | None -> failwith "timeout"

let prop_li_any_value =
  QCheck.Test.make ~name:"li materializes any 32-bit value" ~count:300
    arb_word
    (fun v ->
       let m = run_program (Printf.sprintf "li a0, 0x%x\nebreak\n" v) in
       Machine.get_reg m Reg.a0 = v)

let prop_li_negative_notation =
  QCheck.Test.make ~name:"li accepts signed notation" ~count:300
    (QCheck.make (QCheck.Gen.int_range (-0x80000000) 0x7FFFFFFF))
    (fun v ->
       let m = run_program (Printf.sprintf "li a0, %d\nebreak\n" v) in
       Machine.get_reg m Reg.a0 = Word.of_int v)

let prop_hi_lo_reconstruct =
  QCheck.Test.make ~name:"%hi/%lo reconstruct via lui+addi" ~count:300
    arb_word
    (fun v ->
       let m =
         run_program
           (Printf.sprintf
              ".equ V, 0x%x\nlui a0, %%hi(V)\naddi a0, a0, %%lo(V)\nebreak\n"
              v)
       in
       Machine.get_reg m Reg.a0 = v)

(* ------------------------------------------------------------------ *)
(* Disassembler fixpoint on whole programs *)

let gen_alu_program =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let instr =
    oneof
      [ map3 (fun rd rs1 rs2 -> Instr.Op { op = Instr.Add; rd; rs1; rs2 })
          reg reg reg;
        map3 (fun rd rs1 imm -> Instr.Op_imm { op = Instr.Xor; rd; rs1; imm })
          reg reg (int_range (-2048) 2047);
        map2 (fun rd imm -> Instr.Lui { rd; imm }) reg (int_range 0 0xFFFFF);
        map3 (fun rd rs1 offset ->
            Instr.Load { width = Instr.Word; unsigned = false; rd; rs1;
                         offset })
          reg reg (int_range (-2048) 2047) ]
  in
  list_size (int_range 1 30) instr

let prop_disasm_fixpoint =
  QCheck.Test.make ~name:"assemble(disasm(words)) = words" ~count:200
    (QCheck.make
       ~print:(fun is -> String.concat "\n" (List.map Instr.to_string is))
       gen_alu_program)
    (fun instrs ->
       let text =
         String.concat "\n" (List.map Instr.to_string instrs) ^ "\n"
       in
       match Metal_asm.Asm.assemble text with
       | Error _ -> false
       | Ok img ->
         List.for_all
           (fun (i, instr) ->
              Metal_asm.Image.word_at img (4 * i)
              = Some (Encode.encode_exn instr))
           (List.mapi (fun i x -> (i, x)) instrs))

(* ------------------------------------------------------------------ *)
(* Mgen differential: compiled expressions match an OCaml evaluator *)

type mexpr =
  | P0
  | P1
  | K of int
  | Bin of string * mexpr * mexpr

let rec eval_mexpr ~a0 ~a1 = function
  | P0 -> a0
  | P1 -> a1
  | K v -> Word.of_int v
  | Bin (op, x, y) ->
    let a = eval_mexpr ~a0 ~a1 x and b = eval_mexpr ~a0 ~a1 y in
    begin match op with
    | "add" -> Word.add a b
    | "sub" -> Word.sub a b
    | "and" -> Word.logand a b
    | "or" -> Word.logor a b
    | "xor" -> Word.logxor a b
    | "shl" -> Word.shift_left a b
    | "shr" -> Word.shift_right_logical a b
    | "sar" -> Word.shift_right_arith a b
    | "eq" -> if a = b then 1 else 0
    | "ne" -> if a <> b then 1 else 0
    | "lt" -> if Word.lt_signed a b then 1 else 0
    | "ltu" -> if Word.lt_unsigned a b then 1 else 0
    | "ge" -> if Word.ge_signed a b then 1 else 0
    | "geu" -> if Word.ge_unsigned a b then 1 else 0
    | _ -> assert false
    end

let rec to_mgen = function
  | P0 -> Metal_mgen.Mgen.param 0
  | P1 -> Metal_mgen.Mgen.param 1
  | K v -> Metal_mgen.Mgen.int v
  | Bin (op, x, y) ->
    let a = to_mgen x and b = to_mgen y in
    let f =
      let open Metal_mgen.Mgen in
      match op with
      | "add" -> add
      | "sub" -> sub
      | "and" -> and_
      | "or" -> or_
      | "xor" -> xor
      | "shl" -> shl
      | "shr" -> shr
      | "sar" -> sar
      | "eq" -> eq
      | "ne" -> ne
      | "lt" -> lt
      | "ltu" -> ltu
      | "ge" -> ge
      | "geu" -> geu
      | _ -> assert false
    in
    f a b

let rec print_mexpr = function
  | P0 -> "a0"
  | P1 -> "a1"
  | K v -> string_of_int v
  | Bin (op, x, y) ->
    Printf.sprintf "(%s %s %s)" (print_mexpr x) op (print_mexpr y)

let gen_mexpr =
  let open QCheck.Gen in
  let ops =
    [ "add"; "sub"; "and"; "or"; "xor"; "shl"; "shr"; "sar"; "eq"; "ne";
      "lt"; "ltu"; "ge"; "geu" ]
  in
  (* Shift amounts are masked to 0..31 by the hardware and the model
     alike, so unrestricted operands are fine. *)
  let rec expr n =
    if n = 0 then
      oneof [ return P0; return P1;
              map (fun v -> K (v land 0xFFFF)) (int_bound 0xFFFF) ]
    else
      frequency
        [ (1, return P0); (1, return P1);
          (1, map (fun v -> K (v land 0xFFFF)) (int_bound 0xFFFF));
          (4, map3 (fun op a b -> Bin (op, a, b)) (oneofl ops) (expr (n - 1))
               (expr (n - 1))) ]
  in
  expr 3

let prop_mgen_differential =
  QCheck.Test.make ~name:"Mgen compilation matches direct evaluation"
    ~count:200
    (QCheck.make
       ~print:(fun (e, a0, a1) ->
           Printf.sprintf "%s with a0=%s a1=%s" (print_mexpr e)
             (Word.to_hex a0) (Word.to_hex a1))
       QCheck.Gen.(triple gen_mexpr gen_word gen_word))
    (fun (e, a0, a1) ->
       let r =
         Metal_mgen.Mgen.routine ~name:"p" ~entry:0
           [ Metal_mgen.Mgen.set_param 0 (to_mgen e) ]
       in
       let m = Machine.create () in
       match Metal_mgen.Mgen.install m [ r ] with
       | Error e -> QCheck.Test.fail_report e
       | Ok () ->
         let img =
           Metal_asm.Asm.assemble_exn
             (Printf.sprintf "li a0, 0x%x\nli a1, 0x%x\nmenter 0\nebreak\n"
                a0 a1)
         in
         (match Machine.load_image m img with
          | Ok () -> ()
          | Error e -> failwith e);
         Machine.set_pc m 0;
         begin match Pipeline.run m ~max_cycles:10_000 with
         | Some (Machine.Halt_ebreak _) ->
           let got = Machine.get_reg m Reg.a0 in
           let want = eval_mexpr ~a0 ~a1 e in
           if got = want then true
           else
             QCheck.Test.fail_report
               (Printf.sprintf "got %s want %s" (Word.to_hex got)
                  (Word.to_hex want))
         | Some h -> QCheck.Test.fail_report (Machine.halted_to_string h)
         | None -> QCheck.Test.fail_report "timeout"
         end)

(* ------------------------------------------------------------------ *)
(* Encode/decode roundtrip over the Metal custom-0/custom-1 space *)

let gen_metal_instr =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let off = int_range (-2048) 2047 in
  let csr = int_range 0 (Csr.count - 1) in
  let mr = int_range 0 (Reg.mreg_count - 1) in
  oneof
    [ (* custom-0 *)
      map (fun entry -> Instr.Menter { entry }) (int_range 0 63);
      return Instr.Mexit;
      map2 (fun rd mr -> Instr.Rmr { rd; mr }) reg mr;
      map2 (fun mr rs1 -> Instr.Wmr { mr; rs1 }) mr reg;
      map3 (fun rd rs1 offset -> Instr.Mld { rd; rs1; offset }) reg reg off;
      map3 (fun rs2 rs1 offset -> Instr.Mst { rs2; rs1; offset }) reg reg off;
      (* custom-1 *)
      map3 (fun rd rs1 offset ->
          Instr.Feature (Instr.Physld { rd; rs1; offset }))
        reg reg off;
      map3 (fun rs2 rs1 offset ->
          Instr.Feature (Instr.Physst { rs2; rs1; offset }))
        reg reg off;
      map2 (fun rs1 rs2 -> Instr.Feature (Instr.Tlbw { rs1; rs2 })) reg reg;
      map (fun rs1 -> Instr.Feature (Instr.Tlbflush { rs1 })) reg;
      map2 (fun rd rs1 -> Instr.Feature (Instr.Tlbprobe { rd; rs1 })) reg reg;
      map2 (fun rd rs1 -> Instr.Feature (Instr.Gprr { rd; rs1 })) reg reg;
      map2 (fun rs1 rs2 -> Instr.Feature (Instr.Gprw { rs1; rs2 })) reg reg;
      map2 (fun rs1 rs2 -> Instr.Feature (Instr.Iceptset { rs1; rs2 })) reg
        reg;
      map (fun rs1 -> Instr.Feature (Instr.Iceptclr { rs1 })) reg;
      map2 (fun rd csr -> Instr.Feature (Instr.Mcsrr { rd; csr })) reg csr;
      map2 (fun csr rs1 -> Instr.Feature (Instr.Mcsrw { csr; rs1 })) csr reg ]

let prop_metal_encode_roundtrip =
  QCheck.Test.make ~name:"metal custom-0/1 encode-decode roundtrip"
    ~count:1000
    (QCheck.make
       ~print:(fun mi -> Instr.to_string (Instr.Metal mi))
       gen_metal_instr)
    (fun mi ->
       let i = Instr.Metal mi in
       match Encode.encode i with
       | Error e -> QCheck.Test.fail_report ("encode failed: " ^ e)
       | Ok w ->
         (* The two custom opcode spaces must stay disjoint from the
            base ISA and from each other. *)
         let opc = w land 0x7F in
         (match mi with
          | Instr.Feature _ ->
            if opc <> 0x2B then
              QCheck.Test.fail_report "feature not on custom-1"
          | _ ->
            if opc <> 0x0B then
              QCheck.Test.fail_report "core metal op not on custom-0");
         begin match Decode.decode w with
         | Ok i' ->
           if i' = i then true
           else
             QCheck.Test.fail_report
               (Printf.sprintf "decoded %s from %s" (Instr.to_string i')
                  (Word.to_hex w))
         | Error e -> QCheck.Test.fail_report ("decode failed: " ^ e)
         end)

(* ------------------------------------------------------------------ *)
(* TLB pack/unpack roundtrips *)

let prop_tlb_pack_roundtrip =
  QCheck.Test.make ~name:"tlb tag/data pack-unpack roundtrip" ~count:500
    (QCheck.make
       QCheck.Gen.(
         tup6 (int_bound 0xFFFFF) (int_bound 0xFF) bool (int_bound 0xFFFFF)
           (int_bound 0xF) (tup3 bool bool bool)))
    (fun (vpn, asid, global, ppn, pkey, (r, w, x)) ->
       let tag = Instr.pack_tlb_tag ~vpn ~asid ~global in
       let data = Instr.pack_tlb_data ~ppn ~pkey ~r ~w ~x in
       Instr.unpack_tlb_tag tag = (vpn, asid, global)
       && Instr.unpack_tlb_data data = (ppn, pkey, r, w, x))

let () =
  Alcotest.run "props"
    [
      ( "word",
        List.map QCheck_alcotest.to_alcotest
          [ prop_add_comm; prop_add_sub_inverse; prop_neg_via_sub;
            prop_signed_unsigned_agree; prop_shift_roundtrip;
            prop_sign_extend_idempotent; prop_to_signed_of_signed ] );
      ( "assembler",
        List.map QCheck_alcotest.to_alcotest
          [ prop_li_any_value; prop_li_negative_notation;
            prop_hi_lo_reconstruct; prop_disasm_fixpoint ] );
      ( "mgen",
        List.map QCheck_alcotest.to_alcotest [ prop_mgen_differential ] );
      ( "isa",
        List.map QCheck_alcotest.to_alcotest
          [ prop_metal_encode_roundtrip; prop_tlb_pack_roundtrip ] );
    ]
