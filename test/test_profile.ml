(* Unit tests for lib/profile and for the Collector's re-entrant
   mode_enter handling.

   The profiler is driven two ways: synthetically, by feeding the
   probe a hand-written event stream (which pins the delta-attribution
   and calling-context rules precisely), and end-to-end through a real
   assembled program (which pins symbolization).  The Report algebra
   (merge / equal / JSON round-trip / folded export) is checked on the
   resulting snapshots. *)

module Trace = Metal_trace
module Ev = Metal_trace.Event
module Profile = Metal_profile.Profile
module Report = Profile.Report

(* ------------------------------------------------------------------ *)
(* Collector re-entrancy: a second mode_enter before the first exit —
   nested delivery, or an entry squashed by an older instruction's
   fault — must not corrupt the latency histogram.  The old
   single-slot implementation charged BOTH exits to the inner entry
   (and the outer one with the wrong start cycle). *)

let mroutine entry (m : Trace.Metrics.t) =
  match
    List.find_opt
      (fun (r : Trace.Metrics.mroutine) -> r.entry = entry)
      m.Trace.Metrics.mroutines
  with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "no mroutine row for entry %d" entry)

let test_collector_nested () =
  let c = Trace.Collector.create ~capacity:64 () in
  let ev cycle kind a = Trace.Collector.probe c cycle kind a 0 in
  ev 10 Ev.mode_enter 1;
  ev 15 Ev.mode_enter 2;
  (* inner exits first: latency 5 belongs to entry 2 *)
  ev 20 Ev.mode_exit 2;
  ev 30 Ev.mode_exit 1;
  let m = Trace.Collector.metrics c in
  let inner = mroutine 2 m and outer = mroutine 1 m in
  Alcotest.(check int) "inner count" 1 inner.count;
  Alcotest.(check int) "inner latency" 5 inner.total_cycles;
  Alcotest.(check int) "outer count" 1 outer.count;
  Alcotest.(check int) "outer latency" 20 outer.total_cycles

let test_collector_stack_overflow () =
  let c = Trace.Collector.create ~capacity:1024 () in
  let ev cycle kind a = Trace.Collector.probe c cycle kind a 0 in
  (* 20 opens overflow the 16-slot stack (oldest frames dropped), then
     20 exits drain it; the 4 extra exits must be ignored, not crash. *)
  for i = 0 to 19 do
    ev (10 * i) Ev.mode_enter i
  done;
  for i = 0 to 19 do
    ev (200 + (10 * i)) Ev.mode_exit 0
  done;
  let m = Trace.Collector.metrics c in
  let total =
    List.fold_left
      (fun acc (r : Trace.Metrics.mroutine) -> acc + r.count)
      0 m.Trace.Metrics.mroutines
  in
  Alcotest.(check int) "16 paired round trips" 16 total

(* ------------------------------------------------------------------ *)
(* Synthetic probe stream: pins delta attribution, the spill path
   (guest window of 16 words, pc 0x100 is outside it), call/ret stack
   discipline, and the other-cycles bucket. *)

let synthetic_profile () =
  let p = Profile.create ~guest_words:16 ~mram_words:16 () in
  let ev cycle kind a b = Profile.probe p cycle kind a b in
  ev 1 Ev.retire 0 0;
  ev 2 Ev.retire 4 0;
  ev 2 Ev.call 0x100 4;          (* jal into the spill region *)
  ev 3 Ev.retire 0x100 0;
  ev 4 Ev.retire 0x104 0;
  ev 4 Ev.ret 8 0x104;
  ev 6 Ev.retire 8 0;            (* 2-cycle delta: one bubble *)
  ev 7 Ev.exn 0 0;               (* delivery cycle -> other *)
  Profile.report ~upto:9 p       (* 2-cycle unmarked tail -> other *)

let flat_total (r : Report.t) =
  List.fold_left (fun acc (f : Report.flat_row) -> acc + f.cycles) 0 r.flat

let test_profile_attribution () =
  let r = synthetic_profile () in
  Alcotest.(check int) "total" 9 r.total_cycles;
  Alcotest.(check int) "other (exn + tail)" 3 r.other_cycles;
  Alcotest.(check int) "flat sum" 6 (flat_total r);
  let row pc =
    match
      List.find_opt (fun (f : Report.flat_row) -> f.pc = pc && f.seg = 0) r.flat
    with
    | Some f -> f
    | None -> Alcotest.fail (Printf.sprintf "no flat row for pc 0x%x" pc)
  in
  Alcotest.(check int) "bubble charged to pc 8" 2 (row 8).cycles;
  Alcotest.(check int) "spill pc counted" 1 (row 0x100).cycles;
  (* call graph: root plus one callee frame (guest key of 0x100) *)
  Alcotest.(check int) "two stacks" 2 (List.length r.stacks);
  let callee =
    match
      List.find_opt
        (fun (s : Report.stack_row) -> List.length s.stack = 2)
        r.stacks
    with
    | Some s -> s
    | None -> Alcotest.fail "no callee stack"
  in
  Alcotest.(check int) "callee calls" 1 callee.calls;
  Alcotest.(check int) "callee self cycles" 2 callee.cycles;
  Alcotest.(check int) "callee self instrs" 2 callee.instrs

(* A stray ret (no matching call) must not unwind past a mode_enter
   frame, and mode_exit must unwind everything the mroutine opened,
   even when its rets went missing. *)
let test_profile_guards () =
  let p = Profile.create ~guest_words:16 ~mram_words:16 () in
  let ev cycle kind a b = Profile.probe p cycle kind a b in
  ev 1 Ev.retire 0 0;
  ev 2 Ev.mode_enter 3 0;
  ev 3 Ev.retire 0 1;
  ev 3 Ev.ret 0 0;               (* stray: must stay in the entry frame *)
  ev 4 Ev.retire 4 1;
  ev 4 Ev.call 0x20 4;           (* mcode-internal call, never returns *)
  ev 5 Ev.retire 0x20 1;
  ev 6 Ev.mode_exit 3 0;         (* unwinds the call AND the entry *)
  ev 7 Ev.retire 4 0;
  let r = Profile.report ~upto:7 p in
  let depths =
    List.sort compare
      (List.map (fun (s : Report.stack_row) -> List.length s.stack) r.stacks)
  in
  (* root, root;entry, root;entry;callee — and the post-exit retire
     lands back in root, so no deeper frame exists. *)
  Alcotest.(check (list int)) "stack depths" [ 1; 2; 3 ] depths;
  let root =
    List.find (fun (s : Report.stack_row) -> List.length s.stack = 1) r.stacks
  in
  Alcotest.(check int) "root instrs (before enter + after exit)" 2 root.instrs

(* ------------------------------------------------------------------ *)
(* Report algebra *)

let test_report_roundtrip () =
  let r = synthetic_profile () in
  let json = Report.to_json r in
  match Trace.Json.parse json with
  | Error e -> Alcotest.fail e
  | Ok j ->
    (match Report.of_json j with
     | Error e -> Alcotest.fail e
     | Ok r' ->
       Alcotest.(check bool) "round-trips" true (Report.equal r r');
       Alcotest.(check string) "bytes stable" json (Report.to_json r'))

(* JSON numbers that are not integral must be rejected, not silently
   truncated by int_of_float. *)
let test_report_rejects_non_integral () =
  let r = synthetic_profile () in
  let json = Report.to_json r in
  (* Rewrite "total_cycles": N into N.5. *)
  let doctored =
    let marker = "\"total_cycles\": " in
    match Tutil.find_sub json marker with
    | None -> Alcotest.fail "total_cycles field missing"
    | Some i ->
      let stop = ref (i + String.length marker) in
      while !stop < String.length json
            && json.[!stop] >= '0' && json.[!stop] <= '9' do
        incr stop
      done;
      String.sub json 0 !stop ^ ".5"
      ^ String.sub json !stop (String.length json - !stop)
  in
  match Trace.Json.parse doctored with
  | Error e -> Alcotest.fail e
  | Ok j ->
    (match Report.of_json j with
     | Ok _ -> Alcotest.fail "non-integral total_cycles must be rejected"
     | Error e ->
       Alcotest.(check bool)
         (Printf.sprintf "error %S mentions non-integral" e)
         true
         (Tutil.contains e "non-integral"))

let test_report_merge () =
  let r = synthetic_profile () in
  Alcotest.(check bool) "empty is left identity" true
    (Report.equal r (Report.merge Report.empty r));
  Alcotest.(check bool) "empty is right identity" true
    (Report.equal r (Report.merge r Report.empty));
  let d = Report.merge r r in
  Alcotest.(check int) "doubled total" (2 * r.total_cycles) d.total_cycles;
  Alcotest.(check int) "doubled other" (2 * r.other_cycles) d.other_cycles;
  Alcotest.(check int) "doubled flat" (2 * flat_total r) (flat_total d);
  Alcotest.(check int) "same rows" (List.length r.flat) (List.length d.flat)

let test_folded () =
  let r = synthetic_profile () in
  let lines = String.split_on_char '\n' (String.trim (Report.to_folded r)) in
  Alcotest.(check int) "one line per hot stack" 2 (List.length lines);
  List.iter
    (fun l ->
       Alcotest.(check bool)
         (Printf.sprintf "%S starts at root" l)
         true
         (String.length l > 4 && String.sub l 0 4 = "root"))
    lines

(* ------------------------------------------------------------------ *)
(* End-to-end: a real program through the pipeline, symbolized against
   its own image. *)

let test_end_to_end_symbols () =
  let src =
    "start:\n    li a0, 3\n    jal ra, func\n    ebreak\n\
     func:\n    addi a0, a0, 1\n    ret\n"
  in
  let img = Metal_asm.Asm.assemble_exn src in
  let m = Metal_cpu.Machine.create () in
  (match Metal_cpu.Machine.load_image m img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Metal_cpu.Machine.set_pc m 0;
  let p = Profile.create () in
  Metal_cpu.Machine.set_probe m (Profile.probe p);
  (match Metal_cpu.Pipeline.run m ~max_cycles:10_000 with
   | Some (Metal_cpu.Machine.Halt_ebreak _) -> ()
   | _ -> Alcotest.fail "program did not reach ebreak");
  let stats = m.Metal_cpu.Machine.stats in
  let symtab = Profile.Symtab.of_images ~guest:img () in
  let r = Profile.report ~symtab ~upto:stats.Metal_cpu.Stats.cycles p in
  Alcotest.(check int) "accounts every cycle" stats.Metal_cpu.Stats.cycles
    r.total_cycles;
  Alcotest.(check bool) "func symbolized in call graph" true
    (List.exists (fun (_, n) -> n = "func") r.names);
  let func_rows =
    List.filter (fun (f : Report.flat_row) -> f.name = "func") r.flat
  in
  Alcotest.(check bool) "func has flat rows" true (func_rows <> []);
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "folded mentions func" true
    (contains (Report.to_folded r) "func")

let () =
  Alcotest.run "profile"
    [
      ( "collector",
        [ Alcotest.test_case "nested mode_enter latencies" `Quick
            test_collector_nested;
          Alcotest.test_case "entry-stack overflow" `Quick
            test_collector_stack_overflow ] );
      ( "attribution",
        [ Alcotest.test_case "delta attribution + spill" `Quick
            test_profile_attribution;
          Alcotest.test_case "ret/mode_exit guards" `Quick
            test_profile_guards ] );
      ( "report",
        [ Alcotest.test_case "JSON round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "rejects non-integral numbers" `Quick
            test_report_rejects_non_integral;
          Alcotest.test_case "merge algebra" `Quick test_report_merge;
          Alcotest.test_case "folded export" `Quick test_folded ] );
      ( "end-to-end",
        [ Alcotest.test_case "symbolized real run" `Quick
            test_end_to_end_symbols ] );
    ]
