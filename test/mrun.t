Observability CLI surface of metal-run.  The regression here: batch
mode used to silently drop --trace/--regs and the OS/observability
flag combinations; now every flag is either threaded through to the
fleet jobs or rejected loudly.

Single-program run with trace and metrics export:

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --trace-out t.json --metrics-out m.json
  halt: ebreak at 0x00000010
  stats: cycles=107 instructions=66 (metal=40) ipc=0.62
         bubbles=41 load-use=8 interlocks=8 flushes=7
         menter=8 mexit=8 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  caches: predecode_hits=14 predecode_fills=69 predecode_flushes=2 blockcache_bail_probe=1
  trace: t.json
  metrics: m.json
  mode split: user 43 cycles (40.2%), metal 64 cycles (59.8%)
  instructions: user 26, metal 40
  events: retire=66 mode_enter=8 mode_exit=8 flush=7
  stall cycles:
  mroutine    calls   cycles    min    max     mean
  1               8       64      8      8      8.0

The artifacts are real files (the Chrome trace is validated in depth
by test_trace and ci.sh):

  $ head -c 15 t.json; echo
  {"traceEvents":
  $ grep -c '"schema": "metal-metrics-v1"' m.json
  1

The profiler rides the same probe: --profile-out composes with
--trace-out/--metrics-out and writes the profile JSON plus a
folded-stack flamegraph, then prints the hot-spot report.

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --trace-out t3.json --metrics-out m3.json --profile-out p.json
  halt: ebreak at 0x00000010
  stats: cycles=107 instructions=66 (metal=40) ipc=0.62
         bubbles=41 load-use=8 interlocks=8 flushes=7
         menter=8 mexit=8 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  caches: predecode_hits=14 predecode_fills=69 predecode_flushes=2 blockcache_bail_probe=1
  trace: t3.json
  metrics: m3.json
  mode split: user 43 cycles (40.2%), metal 64 cycles (59.8%)
  instructions: user 26, metal 40
  events: retire=66 mode_enter=8 mode_exit=8 flush=7
  stall cycles:
  mroutine    calls   cycles    min    max     mean
  1               8       64      8      8      8.0
  profile: p.json (flamegraph: p.json.folded)
  profile: 107 cycles (107 attributed to code, 0 other)
  seg     pc         symbol             cycles   instrs   stalls
  guest   0x00000008 loop                   24        8        0
  guest   0x00000004 loop                   22        8        0
  mram    0x00000008 bump                   16        8        0
  guest   0x0000000c loop                    8        8        0
  mram    0x00000000 bump                    8        8        0
  mram    0x00000004 bump                    8        8        0
  mram    0x0000000c bump                    8        8        0
  mram    0x00000010 bump                    8        8        0
  guest   0x00000000 start                   4        1        0
  guest   0x00000010 loop                    1        1        0
  function                     self      cum    calls
  m1:bump                        74       74        8

  $ cat p.json.folded
  root 33
  root;m1:bump 74

  $ ../tools/trace_check.exe metrics m3.json
  m3.json: ok (15 event kinds, 1 mroutines, 28 cache counters)
  $ ../tools/trace_check.exe profile p.json
  p.json: ok (107 cycles, 10 hot PCs, 2 stacks)

Batch mode threads the flags: one Chrome trace per job (FILE.<index>),
merged metrics, per-job register dumps.

  $ cat > prog.s <<'EOF'
  > start:
  >     li a0, 42
  >     ebreak
  > EOF

  $ ../bin/mrun.exe prog.s prog.s --jobs 2 --regs \
  >   --trace-out batch.json --metrics-out batch-metrics.json
  prog.s                           ebreak at 0x00000004                              5 cycles          2 instrs
                                     a0    0x0000002a (42)
                                   trace: batch.json.0
  prog.s                           ebreak at 0x00000004                              5 cycles          2 instrs
                                     a0    0x0000002a (42)
                                   trace: batch.json.1
  metrics: batch-metrics.json
  2/2 ok (2 domains)

  $ ls batch.json.0 batch.json.1
  batch.json.0
  batch.json.1

Merged metrics cover both jobs (each retires the same instructions, so
the merged user_instructions is even and positive):

  $ grep -o '"user_instructions": [0-9]*' batch-metrics.json
  "user_instructions": 4

Batch mode writes one profile per job (FILE.<index>) plus the
fleet-merged artifact at FILE, and composes with the other exporters:

  $ ../bin/mrun.exe prog.s prog.s --jobs 2 \
  >   --metrics-out bm.json --profile-out bp.json
  prog.s                           ebreak at 0x00000004                              5 cycles          2 instrs
                                   profile: bp.json.0
  prog.s                           ebreak at 0x00000004                              5 cycles          2 instrs
                                   profile: bp.json.1
  metrics: bm.json
  profile: bp.json (merged)
  2/2 ok (2 domains)

Merging the per-job profiles in index order reproduces the merged
artifact byte-for-byte (the fleet merge is deterministic):

  $ ../tools/trace_check.exe profile bp.json bp.json.0 bp.json.1
  bp.json: ok (10 cycles, 2 hot PCs, 1 stacks, merge of 2 reproduced)

Flag combinations that cannot work fail loudly instead of silently
dropping the flag:

  $ ../bin/mrun.exe prog.s prog.s --trace
  metal-run: --trace is single-program only; use --trace-out FILE in batch mode (one Chrome trace per job, FILE.<index>)
  [1]

  $ ../bin/mrun.exe prog.s --os --trace-out t2.json
  metal-run: --os does not support --trace/--regs/--trace-out/--metrics-out/--profile-out/--telemetry-out/--watch (the kernel owns the machine)
  [1]

  $ ../bin/mrun.exe prog.s --os --regs
  metal-run: --os does not support --trace/--regs/--trace-out/--metrics-out/--profile-out/--telemetry-out/--watch (the kernel owns the machine)
  [1]

  $ ../bin/mrun.exe prog.s --os --profile-out p2.json
  metal-run: --os does not support --trace/--regs/--trace-out/--metrics-out/--profile-out/--telemetry-out/--watch (the kernel owns the machine)
  [1]

The mcode verifier gates --mcode installs.  --verify prints the WCET
report; verification is on by default, so a broken image refuses to
install without any flag; --no-verify is the escape hatch.

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --verify
  entry  1 @0x0000 bump                  6 instrs  WCET    18 cycles
  interrupt-latency bound: 18 cycles
  halt: ebreak at 0x00000010
  stats: cycles=107 instructions=66 (metal=40) ipc=0.62
         bubbles=41 load-use=8 interlocks=8 flushes=7
         menter=8 mexit=8 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  caches: predecode_hits=14 predecode_fills=69 predecode_flushes=2 blockcache_blocks_built=8 blockcache_lookups=43 blockcache_lookup_hits=35 blockcache_flushes=2 blockcache_bail_metal=8 blockcache_bail_unbuildable=35 blockcache_bail_window=8

--no-blocks disables the block translation cache (the escape hatch for
timing comparisons); the run is bit-identical, only the block-cache
counters vanish from the summary:

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --no-blocks
  halt: ebreak at 0x00000010
  stats: cycles=107 instructions=66 (metal=40) ipc=0.62
         bubbles=41 load-use=8 interlocks=8 flushes=7
         menter=8 mexit=8 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  caches: predecode_hits=14 predecode_fills=69 predecode_flushes=2

  $ cat > bad.mcode <<'EOF2'
  > .mentry 1, f
  > f:
  >     addi t0, t0, 1
  > EOF2

  $ ../bin/mrun.exe prog.s --mcode bad.mcode
  mverify: error: entry 1 @0x0004 [terminate]: execution reaches 0x4, which holds no code (falls off the assembled image before mexit)
  error: mcode verification failed (1 errors, listed above); --no-verify forces the install
  [1]

  $ ../bin/mrun.exe prog.s --mcode bad.mcode --no-verify
  halt: ebreak at 0x00000004
  stats: cycles=5 instructions=2 (metal=0) ipc=0.40
         bubbles=3 load-use=0 interlocks=0 flushes=0
         menter=0 mexit=0 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  caches: predecode_fills=4 predecode_flushes=1 blockcache_blocks_built=5 blockcache_lookups=5 blockcache_flushes=2 blockcache_bail_unbuildable=5

  $ ../bin/mrun.exe prog.s --mcode bad.mcode --verify --no-verify
  metal-run: --verify and --no-verify are contradictory
  [1]

Batch mode verifies the shared mcode once up front:

  $ ../bin/mrun.exe prog.s prog.s --jobs 2 --mcode bad.mcode
  mverify: error: entry 1 @0x0004 [terminate]: execution reaches 0x4, which holds no code (falls off the assembled image before mexit)
  error: mcode verification failed (1 errors, listed above); --no-verify forces the install
  [1]

Fault-injection campaigns: --inject runs a fault-free oracle plus
seeded injected runs and classifies each against it.  The verdicts are
a pure function of the spec (seed, runs, classes), so this output is
deterministic, and --inject-out writes the machine-readable document
that trace_check validates.

  $ cat > loop.s <<'EOF3'
  > start:
  >     li s0, 40
  > loop:
  >     menter 1
  >     addi s0, s0, -1
  >     bne s0, zero, loop
  >     ebreak
  > EOF3

  $ cat > ping.mcode <<'EOF4'
  > .mentry 1, ping
  > ping:
  >     wmr m11, t0
  >     rmr t0, m10
  >     addi t0, t0, 1
  >     wmr m10, t0
  >     rmr t0, m11
  >     mexit
  > EOF4

  $ ../bin/mrun.exe loop.s --mcode ping.mcode \
  >   --inject seed:7,runs:6,classes:mram-code+irq-spurious,user-only \
  >   --inject-out verdicts.json
  campaign loop.s: seed:7,runs:6,classes:mram-code+irq-spurious,integrity,user-only
  oracle: ebreak at 0x00000010 (523 cycles)
  verdict              runs    rate
  masked                  3   50.0%
  detected                3   50.0%
  silent corruption       0    0.0%
    [0] mram-code word 2577 bit 18 @ user-cycle>=384 -> detected (mram integrity re-check failed on menter)
    [2] mram-code word 693 bit 19 @ user-cycle>=284 -> detected (mram integrity re-check failed on menter)
    [3] mram-code word 849 bit 16 @ user-cycle>=88 -> detected (mram integrity re-check failed on menter)
  verdicts: verdicts.json

  $ ../tools/trace_check.exe inject verdicts.json
  verdicts.json: ok (1 campaigns, 6 runs: 3 masked, 0 corrected, 3 detected, 0 silent)

Campaign verdicts are independent of the fleet domain count:

  $ ../bin/mrun.exe loop.s --mcode ping.mcode --inject seed:7,runs:6 \
  >   --inject-out v1.json --jobs 1
  campaign loop.s: seed:7,runs:6,classes:mram-code+mram-data+mreg+tlb+tlb-drop+irq-spurious+irq-drop+load,integrity
  oracle: ebreak at 0x00000010 (523 cycles)
  verdict              runs    rate
  masked                  4   66.7%
  detected                2   33.3%
  silent corruption       0    0.0%
    [2] mram-code word 693 bit 19 @ cycle>=284 -> detected (mram integrity re-check failed on menter)
    [3] mram-code word 849 bit 16 @ cycle>=88 -> detected (mram integrity re-check failed on menter)
  verdicts: v1.json
  $ ../bin/mrun.exe loop.s --mcode ping.mcode --inject seed:7,runs:6 \
  >   --inject-out v4.json --jobs 4
  campaign loop.s: seed:7,runs:6,classes:mram-code+mram-data+mreg+tlb+tlb-drop+irq-spurious+irq-drop+load,integrity
  oracle: ebreak at 0x00000010 (523 cycles)
  verdict              runs    rate
  masked                  4   66.7%
  detected                2   33.3%
  silent corruption       0    0.0%
    [2] mram-code word 693 bit 19 @ cycle>=284 -> detected (mram integrity re-check failed on menter)
    [3] mram-code word 849 bit 16 @ cycle>=88 -> detected (mram integrity re-check failed on menter)
  verdicts: v4.json
  $ cmp v1.json v4.json && echo identical
  identical

Batch campaigns write one verdict document per program:

  $ ../bin/mrun.exe loop.s loop.s --mcode ping.mcode \
  >   --inject seed:7,runs:4 --inject-out vb.json
  campaign loop.s: seed:7,runs:4,classes:mram-code+mram-data+mreg+tlb+tlb-drop+irq-spurious+irq-drop+load,integrity
  oracle: ebreak at 0x00000010 (523 cycles)
  verdict              runs    rate
  masked                  2   50.0%
  detected                2   50.0%
  silent corruption       0    0.0%
    [2] mram-code word 693 bit 19 @ cycle>=284 -> detected (mram integrity re-check failed on menter)
    [3] mram-code word 849 bit 16 @ cycle>=88 -> detected (mram integrity re-check failed on menter)
  verdicts: vb.json.0
  campaign loop.s: seed:7,runs:4,classes:mram-code+mram-data+mreg+tlb+tlb-drop+irq-spurious+irq-drop+load,integrity
  oracle: ebreak at 0x00000010 (523 cycles)
  verdict              runs    rate
  masked                  2   50.0%
  detected                2   50.0%
  silent corruption       0    0.0%
    [2] mram-code word 693 bit 19 @ cycle>=284 -> detected (mram integrity re-check failed on menter)
    [3] mram-code word 849 bit 16 @ cycle>=88 -> detected (mram integrity re-check failed on menter)
  verdicts: vb.json.1
  $ ../tools/trace_check.exe inject vb.json.0 vb.json.1
  vb.json.0: ok (1 campaigns, 4 runs: 2 masked, 0 corrected, 2 detected, 0 silent)
  vb.json.1: ok (1 campaigns, 4 runs: 2 masked, 0 corrected, 2 detected, 0 silent)

Invalid fault-class strings and spec keys are rejected loudly, as are
the flag combinations that cannot work:

  $ ../bin/mrun.exe loop.s --inject classes:cosmic-ray
  metal-run: --inject unknown fault class "cosmic-ray" (valid: mram-code, mram-data, mreg, tlb, tlb-drop, irq-spurious, irq-drop, load)
  [1]

  $ ../bin/mrun.exe loop.s --inject speed:9
  metal-run: --inject unknown --inject key "speed" (valid: seed:N, runs:N, classes:NAME+NAME, integrity, no-integrity, user-only)
  [1]

  $ ../bin/mrun.exe loop.s --inject seed:1 --os
  metal-run: --inject drives the bare machine (campaigns need the fault-free oracle); it does not combine with --os
  [1]

  $ ../bin/mrun.exe loop.s --inject seed:1 --trace-out t9.json
  metal-run: --inject owns the probe and the run loop; it does not combine with --trace/--regs/--trace-out/--metrics-out/--profile-out/--telemetry-out/--watch (use --inject-out FILE for the verdict JSON)
  [1]

  $ ../bin/mrun.exe loop.s --inject-out orphan.json
  metal-run: --inject-out requires --inject
  [1]

A non-positive --jobs used to fall back silently to the default domain
count; now it is rejected loudly:

  $ ../bin/mrun.exe loop.s --jobs 0
  metal-run: --jobs 0: the domain count must be positive (omit --jobs to let the fleet pick one domain per core; requests above the core count are clamped)
  [1]

  $ ../bin/mrun.exe loop.s loop.s --jobs=-2
  metal-run: --jobs -2: the domain count must be positive (omit --jobs to let the fleet pick one domain per core; requests above the core count are clamped)
  [1]

ECC: --ecc arms the SECDED layer on MRAM data and the m-registers.  A
fault-free run is architecturally identical to a plain one (this
workload issues no mld, so even the cycle counts match the earlier
run), and the kernel combination is rejected:

  $ ../bin/mrun.exe loop.s --mcode ping.mcode --ecc
  halt: ebreak at 0x00000010
  stats: cycles=523 instructions=322 (metal=200) ipc=0.62
         bubbles=201 load-use=40 interlocks=40 flushes=39
         menter=40 mexit=40 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  caches: predecode_hits=78 predecode_fills=325 predecode_flushes=2 blockcache_blocks_built=8 blockcache_lookups=203 blockcache_lookup_hits=195 blockcache_flushes=2 blockcache_bail_metal=40 blockcache_bail_unbuildable=163 blockcache_bail_window=40

  $ ../bin/mrun.exe loop.s --ecc --os
  metal-run: --ecc configures the bare machine's MRAM/m-register SECDED layer; the mini-kernel owns its own machine config, so it does not combine with --os
  [1]

The E20 gap, end to end: without ECC every mram-data/mreg upset in
this spec corrupts silently; arming --ecc leaves zero silent runs —
consumed upsets are corrected (with ecc_corrected counts in the
verdict JSON), the rest are masked by the corrected read view.

  $ ../bin/mrun.exe loop.s --mcode ping.mcode \
  >   --inject seed:4,runs:8,classes:mreg+mram-data
  campaign loop.s: seed:4,runs:8,classes:mreg+mram-data,integrity
  oracle: ebreak at 0x00000010 (523 cycles)
  verdict              runs    rate
  masked                  0    0.0%
  detected                0    0.0%
  silent corruption       8  100.0%
    [0] mreg m19 bit 5 @ cycle>=282 -> silent_corruption (mreg m19)
    [1] mreg m18 bit 10 @ cycle>=110 -> silent_corruption (mreg m18)
    [2] mreg m14 bit 21 @ cycle>=188 -> silent_corruption (mreg m14)
    [3] mram-data 0x6a8 bit 31 @ cycle>=59 -> silent_corruption (mram-data)
    [4] mreg m11 bit 6 @ cycle>=282 -> silent_corruption (reg t0; mreg m11)
    [5] mreg m15 bit 23 @ cycle>=42 -> silent_corruption (mreg m15)
    [6] mram-data 0x16a8 bit 6 @ cycle>=461 -> silent_corruption (mram-data)
    [7] mram-data 0x158 bit 23 @ cycle>=176 -> silent_corruption (mram-data)

  $ ../bin/mrun.exe loop.s --mcode ping.mcode --ecc \
  >   --inject seed:4,runs:8,classes:mreg+mram-data --inject-out ve.json
  campaign loop.s: seed:4,runs:8,classes:mreg+mram-data,integrity [ecc]
  oracle: ebreak at 0x00000010 (523 cycles)
  verdict              runs    rate
  masked                  7   87.5%
  corrected               1   12.5%
  detected                0    0.0%
  silent corruption       0    0.0%
    [4] mreg m11 bit 6 @ cycle>=282 -> corrected (secded corrected 1 consumption)
  verdicts: ve.json

  $ ../tools/trace_check.exe inject ve.json
  ve.json: ok (1 campaigns, 8 runs: 7 masked, 1 corrected, 0 detected, 0 silent)

Windowed telemetry: --telemetry-out samples the probe stream into
fixed cycle windows (IPC, stall shares, mode residency, mroutine
latencies, ECC/injection counts) and --watch arms declarative
watchdog rules over those windows.  The wcet rule cross-checks each
measured mroutine latency against the static verifier's per-entry
WCET bound, live.

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --telemetry-out tel.ndjson --telemetry-window 16 --watch wcet
  halt: ebreak at 0x00000010
  stats: cycles=107 instructions=66 (metal=40) ipc=0.62
         bubbles=41 load-use=8 interlocks=8 flushes=7
         menter=8 mexit=8 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  caches: predecode_hits=14 predecode_fills=69 predecode_flushes=2 blockcache_bail_probe=1
  telemetry: tel.ndjson
  telemetry: 7 windows x 16 cycles, 107 cycles covered
    ipc     ▆▆▇▇▆▆█  min 0.56 @w0  max 0.82 @w6
    metal%  ▆███▆█▇  min 50% @w0  max 69% @w1
    stall%  ▁▁▁▁▁▁▁  min 0% @w0  max 0% @w0
    mexits  ▅▅▅█▅▅▅  min 1 @w0  max 2 @w3
  watchdog: ok (1 rules)

The export is ndjson (schema metal-telemetry-v1) and trace_check
recounts every header total from the window rows, then round-trips
the canonical rendering byte-for-byte:

  $ head -c 34 tel.ndjson; echo
  {"schema": "metal-telemetry-v1", "
  $ ../tools/trace_check.exe telemetry tel.ndjson
  tel.ndjson: ok (7 windows x 16 cycles, 107 cycles, header totals recounted)

A .csv extension switches the export format:

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --telemetry-out tel.csv --telemetry-window 16 > /dev/null
  $ head -1 tel.csv | cut -d, -f1-4
  window,user_cycles,metal_cycles,instructions

Batch mode writes one series per job (FILE.<index>) plus the
deterministic index-order merge, and trace_check replays the merge
from the parts:

  $ ../bin/mrun.exe loop.s loop.s --mcode ping.mcode --jobs 2 \
  >   --telemetry-out bt.ndjson --watch ipc_floor:0.01
  loop.s                           ebreak at 0x00000010                            523 cycles        322 instrs
                                   telemetry: bt.ndjson.0
  loop.s                           ebreak at 0x00000010                            523 cycles        322 instrs
                                   telemetry: bt.ndjson.1
  telemetry: bt.ndjson (merged)
  watchdog: ok (1 rules)
  2/2 ok (2 domains)

  $ ../tools/trace_check.exe telemetry bt.ndjson bt.ndjson.0 bt.ndjson.1
  bt.ndjson: ok (1 windows x 1024 cycles, 1046 cycles, header totals recounted, merge of 2 reproduced)

A tripped fault-severity rule turns the exit status, same as a
failed run — watchdogs are for CI:

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --telemetry-window 16 --watch ipc_floor:0.99:fault > watch.out; echo "exit $?"
  exit 1
  $ grep watchdog watch.out
  watchdog[fault] ipc_floor:0.99:fault w0 @cycle 16: ipc 0.56 < floor 0.99 (9 instructions in 16 cycles)
  watchdog[fault] ipc_floor:0.99:fault w1 @cycle 32: ipc 0.56 < floor 0.99 (9 instructions in 16 cycles)
  watchdog[fault] ipc_floor:0.99:fault w2 @cycle 48: ipc 0.62 < floor 0.99 (10 instructions in 16 cycles)
  watchdog[fault] ipc_floor:0.99:fault w3 @cycle 64: ipc 0.69 < floor 0.99 (11 instructions in 16 cycles)
  watchdog[fault] ipc_floor:0.99:fault w4 @cycle 80: ipc 0.56 < floor 0.99 (9 instructions in 16 cycles)
  watchdog[fault] ipc_floor:0.99:fault w5 @cycle 96: ipc 0.56 < floor 0.99 (9 instructions in 16 cycles)
  watchdog: 6 alarms (6 fault, 0 warn)

Rejections are loud.  Unknown rules, malformed specs, dangling
commas, non-positive windows, and wcet without static bounds to
check against all fail up front:

  $ ../bin/mrun.exe loop.s --watch bogus
  metal-run: --watch "bogus": unknown rule (one of wcet, ipc_floor:R, stall_share:CAUSE>P, ecc_storm:N, mode_residency:MODE>P)
  [1]
  $ ../bin/mrun.exe loop.s --watch wcet,,
  metal-run: --watch empty rule in watch spec
  [1]
  $ ../bin/mrun.exe loop.s --watch ipc_floor:-1
  metal-run: --watch "ipc_floor:-1": expected ipc_floor:R with R > 0
  [1]
  $ ../bin/mrun.exe loop.s --telemetry-window 0
  metal-run: --telemetry-window 0: the window size must be a positive cycle count
  [1]
  $ ../bin/mrun.exe loop.s --watch wcet
  metal-run: --watch wcet checks measured mroutine latencies against the static verifier's per-entry bounds, so it needs --mcode with verification on (drop --no-verify)
  [1]
