Observability CLI surface of metal-run.  The regression here: batch
mode used to silently drop --trace/--regs and the OS/observability
flag combinations; now every flag is either threaded through to the
fleet jobs or rejected loudly.

Single-program run with trace and metrics export:

  $ ../bin/mrun.exe ../examples/trace_demo.s --mcode ../examples/trace_demo.mcode \
  >   --trace-out t.json --metrics-out m.json
  halt: ebreak at 0x00000010
  stats: cycles=107 instructions=66 (metal=40) ipc=0.62
         bubbles=41 load-use=8 interlocks=8 flushes=7
         menter=8 mexit=8 exceptions=0 interrupts=0 intercepts=0
         tlb hit/miss=0/0 hw-walks=0 mem-stalls=0 fetch-stalls=0 walker-stalls=0
  trace: t.json
  metrics: m.json
  mode split: user 43 cycles (40.2%), metal 64 cycles (59.8%)
  instructions: user 26, metal 40
  events: retire=66 mode_enter=8 mode_exit=8 flush=7
  stall cycles:
  mroutine    calls   cycles    min    max     mean
  1               8       64      8      8      8.0

The artifacts are real files (the Chrome trace is validated in depth
by test_trace and ci.sh):

  $ head -c 15 t.json; echo
  {"traceEvents":
  $ grep -c '"schema": "metal-metrics-v1"' m.json
  1

Batch mode threads the flags: one Chrome trace per job (FILE.<index>),
merged metrics, per-job register dumps.

  $ cat > prog.s <<'EOF'
  > start:
  >     li a0, 42
  >     ebreak
  > EOF

  $ ../bin/mrun.exe prog.s prog.s --jobs 2 --regs \
  >   --trace-out batch.json --metrics-out batch-metrics.json
  prog.s                           ebreak at 0x00000004                              5 cycles          2 instrs
                                     a0    0x0000002a (42)
                                   trace: batch.json.0
  prog.s                           ebreak at 0x00000004                              5 cycles          2 instrs
                                     a0    0x0000002a (42)
                                   trace: batch.json.1
  metrics: batch-metrics.json
  2/2 ok (2 domains)

  $ ls batch.json.0 batch.json.1
  batch.json.0
  batch.json.1

Merged metrics cover both jobs (each retires the same instructions, so
the merged user_instructions is even and positive):

  $ grep -o '"user_instructions": [0-9]*' batch-metrics.json
  "user_instructions": 4

Flag combinations that cannot work fail loudly instead of silently
dropping the flag:

  $ ../bin/mrun.exe prog.s prog.s --trace
  metal-run: --trace is single-program only; use --trace-out FILE in batch mode (one Chrome trace per job, FILE.<index>)
  [1]

  $ ../bin/mrun.exe prog.s --os --trace-out t2.json
  metal-run: --os does not support --trace/--regs/--trace-out/--metrics-out (the kernel owns the machine)
  [1]

  $ ../bin/mrun.exe prog.s --os --regs
  metal-run: --os does not support --trace/--regs/--trace-out/--metrics-out (the kernel owns the machine)
  [1]
