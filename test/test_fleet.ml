(* The fleet batch runner: scheduling correctness, per-job failure
   isolation, and the determinism guarantee — a batch of randomized
   jobs must produce bit-identical per-job Stats and results whether
   it runs on 1 domain or 8, in spite of work stealing. *)

open Metal_cpu
module Fleet = Metal_fleet.Fleet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Generic map layer *)

let test_map_preserves_order () =
  let input = Array.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Fleet.map ~domains:1 f input in
  let par = Fleet.map ~domains:4 f input in
  Array.iteri
    (fun i x ->
       check_int "seq" (f x) (Result.get_ok seq.(i));
       check_int "par" (f x) (Result.get_ok par.(i)))
    input

let test_map_isolates_exceptions () =
  let input = Array.init 12 (fun i -> i) in
  let f x = if x = 5 then failwith "boom" else 2 * x in
  let out = Fleet.map ~domains:3 f input in
  Array.iteri
    (fun i r ->
       if i = 5 then
         match r with
         | Error msg ->
           check_bool "names the exception" true (contains msg "boom");
           (* The failure text must carry a backtrace frame, not just
              the exception: the raw backtrace is captured as the
              first action of the catch site (anything earlier
              overwrites the per-domain buffer and used to yield an
              empty trace). *)
           check_bool
             (Printf.sprintf "carries a backtrace frame: %S" msg)
             true
             (contains msg "Raised at" || contains msg "Raised by")
         | Ok _ -> Alcotest.fail "raising element produced Ok"
       else check_int "survivor" (2 * i) (Result.get_ok r))
    out

(* Heavily skewed job sizes: the first job dominates; stealing must
   still hand every job to exactly one worker and keep result order. *)
let test_map_skewed_sizes () =
  let work = [| 200_000; 10; 10; 10; 10; 10; 10; 10; 10 |] in
  let f n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc + i) land 0xFFFF
    done;
    !acc
  in
  let seq = Fleet.map ~domains:1 f work in
  let par = Fleet.map ~domains:3 f work in
  Alcotest.(check bool) "skewed results equal" true (seq = par)

(* ------------------------------------------------------------------ *)
(* Job layer: directed cases *)

let test_job_runs_assembly () =
  let j =
    Fleet.job ~label:"add"
      (Fleet.Asm
         { src = "li a0, 40\naddi a0, a0, 2\nebreak\n"; origin = 0;
           mcode = None })
  in
  match Fleet.run_job j with
  | Ok ok ->
    (match ok.Fleet.halt with
     | Machine.Halt_ebreak _ -> ()
     | h -> Alcotest.fail (Machine.halted_to_string h));
    check_int "a0" 42 ok.Fleet.regs.(10);
    check_bool "ran some cycles" true (ok.Fleet.stats.Stats.cycles > 0)
  | Error e -> Alcotest.fail (Fleet.fail_to_string e)

let test_job_with_mcode () =
  let j =
    Fleet.job ~label:"mcode"
      (Fleet.Asm
         {
           src = "li a0, 4\nmenter 7\nebreak\n";
           origin = 0;
           mcode =
             Some
               ".mentry 7, scale\nscale:\nslli t0, a0, 3\nslli t1, a0, 1\n\
                add a0, t0, t1\nmexit\n";
         })
  in
  match Fleet.run_job j with
  | Ok ok -> check_int "a0 scaled" 40 ok.Fleet.regs.(10)
  | Error e -> Alcotest.fail (Fleet.fail_to_string e)

let test_job_console () =
  let j =
    Fleet.job ~label:"console"
      (Fleet.Asm
         {
           src =
             Printf.sprintf "li t0, 0x%x\nli t1, 'F'\nsw t1, 0(t0)\nebreak\n"
               Metal_hw.Bus.mmio_base;
           origin = 0;
           mcode = None;
         })
  in
  match Fleet.run_job j with
  | Ok ok -> Alcotest.(check string) "console" "F" ok.Fleet.console
  | Error e -> Alcotest.fail (Fleet.fail_to_string e)

let test_job_typed_failures () =
  let jobs =
    [|
      Fleet.job ~label:"ok" (Fleet.Asm { src = "li a0, 1\nebreak\n"; origin = 0; mcode = None });
      Fleet.job ~label:"syntax"
        (Fleet.Asm { src = "not_an_instr x, y\n"; origin = 0; mcode = None });
      Fleet.job ~label:"spin" ~fuel:500
        (Fleet.Asm { src = "loop:\nj loop\n"; origin = 0; mcode = None });
      Fleet.job ~label:"ok2" (Fleet.Asm { src = "li a1, 2\nebreak\n"; origin = 0; mcode = None });
    |]
  in
  let out = Fleet.run ~domains:2 jobs in
  check_int "all jobs reported" 4 (Array.length out);
  (match out.(0).Fleet.result with
   | Ok ok -> check_int "job 0 a0" 1 ok.Fleet.regs.(10)
   | Error e -> Alcotest.fail (Fleet.fail_to_string e));
  (match out.(1).Fleet.result with
   | Error (Fleet.Assemble_error _) -> ()
   | Error e -> Alcotest.fail ("expected assemble error: " ^ Fleet.fail_to_string e)
   | Ok _ -> Alcotest.fail "bad syntax assembled");
  (match out.(2).Fleet.result with
   | Error (Fleet.Fuel_exhausted { fuel }) -> check_int "fuel" 500 fuel
   | Error e -> Alcotest.fail ("expected fuel error: " ^ Fleet.fail_to_string e)
   | Ok _ -> Alcotest.fail "spin halted");
  match out.(3).Fleet.result with
  | Ok ok -> check_int "job 3 a1" 2 ok.Fleet.regs.(11)
  | Error e -> Alcotest.fail (Fleet.fail_to_string e)

(* ------------------------------------------------------------------ *)
(* Determinism: 64 randomized jobs, 1 domain vs 8 domains *)

(* Self-contained seeded program generator (instruction lists — no
   labels needed, branches are forward +8 skips as in
   test_differential). *)
let gen_image rand =
  let reg () = rand 16 in
  let alu =
    [| Instr.Add; Instr.Sub; Instr.Sll; Instr.Slt; Instr.Sltu; Instr.Xor;
       Instr.Srl; Instr.Sra; Instr.Or; Instr.And |]
  in
  let cond =
    [| Instr.Beq; Instr.Bne; Instr.Blt; Instr.Bge; Instr.Bltu; Instr.Bgeu |]
  in
  let base_reg = 28 and counter_reg = 29 in
  let body_len = 10 + rand 30 in
  let body =
    List.init body_len (fun i ->
        if i >= body_len - 2 then
          Instr.Op
            { op = alu.(rand 10); rd = reg (); rs1 = reg (); rs2 = reg () }
        else
          match rand 10 with
          | 0 | 1 | 2 ->
            Instr.Op
              { op = alu.(rand 10); rd = reg (); rs1 = reg (); rs2 = reg () }
          | 3 | 4 ->
            Instr.Op_imm
              { op = Instr.Add; rd = reg (); rs1 = reg ();
                imm = rand 4096 - 2048 }
          | 5 ->
            Instr.Load
              { width = Instr.Word; unsigned = false; rd = reg ();
                rs1 = base_reg; offset = 4 * rand 64 }
          | 6 ->
            Instr.Store
              { width = Instr.Word; rs2 = reg (); rs1 = base_reg;
                offset = 4 * rand 64 }
          | 7 ->
            Instr.Branch
              { cond = cond.(rand 6); rs1 = reg (); rs2 = reg (); offset = 8 }
          | _ ->
            Instr.Op_imm
              { op = Instr.Xor; rd = reg (); rs1 = reg (); imm = rand 2048 })
  in
  let iters = 1 + rand 40 in
  let prologue =
    [ Instr.Lui { rd = base_reg; imm = 0x1000 lsr 12 };
      Instr.Op_imm { op = Instr.Add; rd = counter_reg; rs1 = 0; imm = iters } ]
  in
  let epilogue =
    [ Instr.Op_imm
        { op = Instr.Add; rd = counter_reg; rs1 = counter_reg; imm = -1 };
      Instr.Branch
        { cond = Instr.Bne; rs1 = counter_reg; rs2 = 0;
          offset = -4 * (body_len + 1) };
      Instr.Ebreak ]
  in
  let instrs = prologue @ body @ epilogue in
  let b = Metal_asm.Image.Builder.create () in
  List.iteri
    (fun i instr ->
       match
         Metal_asm.Image.Builder.emit_word b ~addr:(4 * i)
           (Encode.encode_exn instr)
       with
       | Ok () -> ()
       | Error e -> failwith e)
    instrs;
  Metal_asm.Image.Builder.finish b

(* Vary the timing configuration too: determinism must hold for every
   ablation point, including the Pipeline_slow oracle. *)
let gen_config rand =
  let base = Config.default in
  let base = { base with Config.predecode = rand 2 = 0 } in
  let base =
    if rand 3 = 0 then { base with Config.transition = Config.Trap_flush }
    else base
  in
  let base = { base with Config.mem_latency = rand 3 } in
  if rand 4 = 0 then
    { base with
      Config.icache =
        Some { Metal_hw.Cache.lines = 8; line_bytes = 16; miss_penalty = 4 };
      Config.dcache =
        Some { Metal_hw.Cache.lines = 8; line_bytes = 16; miss_penalty = 4 } }
  else base

let gen_jobs ~count seed =
  (* xorshift so the corpus is reproducible from the seed alone *)
  let state = ref (if seed = 0 then 0x9E3779B9 else seed land 0x3FFFFFFF) in
  let rand bound =
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 17) in
    let s = s lxor (s lsl 5) in
    state := s land 0x3FFFFFFF;
    !state mod bound
  in
  Array.init count (fun i ->
      let img = gen_image rand in
      let config = gen_config rand in
      (* a sixth of the fleet is deliberately fuel-starved so error
         outcomes are covered by the determinism check as well *)
      let fuel = if rand 6 = 0 then 30 else 200_000 in
      Fleet.job
        ~label:(Printf.sprintf "seed%d-job%d" seed i)
        ~config ~fuel ~seed (Fleet.Image img))

let prop_fleet_deterministic =
  QCheck.Test.make ~name:"64-job fleet: 1 domain = 8 domains" ~count:3
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 0x3FFFFFF))
    (fun seed ->
       let jobs = gen_jobs ~count:64 seed in
       let one = Fleet.run ~domains:1 jobs in
       let eight = Fleet.run ~domains:8 jobs in
       match Fleet.identical one eight with
       | Ok () -> true
       | Error msg -> QCheck.Test.fail_report msg)

(* Retirement counts must match across domain counts too (subsumed by
   stats equality, asserted separately so a Stats refactor cannot
   silently drop the field from the comparison). *)
let test_retirement_counts_across_domains () =
  let jobs = gen_jobs ~count:24 0xBEEF in
  let one = Fleet.run ~domains:1 jobs in
  let four = Fleet.run ~domains:4 jobs in
  Array.iteri
    (fun i a ->
       match (a.Fleet.result, four.(i).Fleet.result) with
       | Ok ra, Ok rb ->
         check_int "retired" ra.Fleet.stats.Stats.instructions
           rb.Fleet.stats.Stats.instructions
       | Error ea, Error eb ->
         Alcotest.(check string)
           "error" (Fleet.fail_to_string ea) (Fleet.fail_to_string eb)
       | _ -> Alcotest.fail (Printf.sprintf "job %d: outcome kind differs" i))
    one

let test_identical_flags_divergence () =
  let jobs = gen_jobs ~count:4 7 in
  let a = Fleet.run ~domains:1 jobs in
  let b = Fleet.run ~domains:1 jobs in
  (match Fleet.identical a b with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (* perturb one register of one job *)
  (match b.(2).Fleet.result with
   | Ok ok -> ok.Fleet.regs.(5) <- ok.Fleet.regs.(5) + 1
   | Error _ -> ());
  match (b.(2).Fleet.result, Fleet.identical a b) with
  | Ok _, Ok () -> Alcotest.fail "perturbation not detected"
  | Ok _, Error _ -> ()
  | Error _, _ -> () (* job 2 errored; nothing to perturb *)

let () =
  Alcotest.run "fleet"
    [
      ( "map",
        [ Alcotest.test_case "order preserved" `Quick test_map_preserves_order;
          Alcotest.test_case "exception isolation" `Quick
            test_map_isolates_exceptions;
          Alcotest.test_case "skewed sizes" `Quick test_map_skewed_sizes ] );
      ( "jobs",
        [ Alcotest.test_case "assembly job" `Quick test_job_runs_assembly;
          Alcotest.test_case "mcode job" `Quick test_job_with_mcode;
          Alcotest.test_case "console capture" `Quick test_job_console;
          Alcotest.test_case "typed failures" `Quick test_job_typed_failures ] );
      ( "determinism",
        Alcotest.test_case "retirement counts 1 vs 4 domains" `Quick
          test_retirement_counts_across_domains
        :: Alcotest.test_case "identical flags divergence" `Quick
             test_identical_flags_divergence
        :: List.map QCheck_alcotest.to_alcotest [ prop_fleet_deterministic ] );
    ]
