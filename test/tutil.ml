(* Shared helpers for the test suites. *)

(* Naive substring search; inputs are small test strings. *)
let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then Some 0
  else
    let rec go i =
      if i + n > h then None
      else if String.sub haystack i n = needle then Some i
      else go (i + 1)
    in
    go 0

let contains haystack needle = find_sub haystack needle <> None

(* Differential fault-injection oracle: run [prepare]'s workload once
   fault-free and once with [plan] injected, and classify the injected
   run against the fault-free snapshot.  Returns the verdict plus the
   raw pieces so tests can assert on individual components.  Shared by
   test_inject and usable by any suite that wants a
   corrupt-and-compare harness. *)
let run_injected ?(config = Metal_cpu.Config.default) ?(integrity = false)
    ~fuel ~plan prepare =
  let module System = Metal_core.System in
  let module Inject = Metal_inject.Inject in
  let halt_of = function Inject.Halted h -> Some h | _ -> None in
  let oracle_sys = System.create ~config () in
  prepare oracle_sys;
  let om = oracle_sys.System.machine in
  let ostop, _ = Inject.run_plan om ~fuel ~plan:[] in
  let oracle =
    Inject.Snapshot.take om
      ~console:(System.console_output oracle_sys)
      ~halt:(halt_of ostop)
  in
  let sys = System.create ~config () in
  prepare sys;
  let m = sys.System.machine in
  (* Count [ecc_correct] events so ECC-armed workloads can classify as
     Corrected; counters are exact regardless of ring drops. *)
  let c = Metal_trace.Collector.create ~capacity:1024 () in
  Metal_cpu.Machine.set_probe m (Metal_trace.Collector.probe c);
  let stop, applied = Inject.run_plan ~integrity m ~fuel ~plan in
  let snap =
    Inject.Snapshot.take m
      ~console:(System.console_output sys)
      ~halt:(halt_of stop)
  in
  let corrections =
    match
      List.assoc_opt "ecc_correct"
        (Metal_trace.Collector.metrics c).Metal_trace.Metrics.event_counts
    with
    | Some n -> n
    | None -> 0
  in
  let verdict = Inject.classify ~corrections ~oracle ~stop ~snap () in
  (verdict, applied, stop, oracle, snap)
