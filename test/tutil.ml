(* Shared helpers for the test suites. *)

(* Naive substring search; inputs are small test strings. *)
let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then Some 0
  else
    let rec go i =
      if i + n > h then None
      else if String.sub haystack i n = needle then Some i
      else go (i + 1)
    in
    go 0

let contains haystack needle = find_sub haystack needle <> None
