(* SECDED ECC (lib/hw/ecc) and its integration through MRAM data,
   the Metal register file and the pipelines.

   The codec properties are exhaustive where the space is small
   enough: every one of the 39 single-bit codeword flips must correct
   back to the stored word (identifying the flipped bit), and every
   one of the 741 double flips must classify Uncorrectable — never
   Clean, never miscorrected.  The integration tests pin the two read
   views (plain reads silently return the corrected word; checked
   reads report the decoder status), the injector contract (flips land
   under the encoder), the Mld timing cost, and the end-to-end
   robustness claim: a Metal-register upset inside an active mroutine
   is corrected at its consumption point, at every injection cycle,
   on both steppers.  A corpus differential pins that ECC off is
   bit-identical to an ECC-armed fault-free run (and that arming it
   costs nothing when no mroutine issues Mld). *)

open Metal_cpu
module Ecc = Metal_hw.Ecc
module Mram = Metal_hw.Mram
module Mregs = Metal_hw.Mregs
module System = Metal_core.System
module Inject = Metal_inject.Inject
module Collector = Metal_trace.Collector

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Codec properties                                                    *)

let sample_words =
  [ 0; 1; 0x80000000; 0xFFFFFFFF; 0xDEADBEEF; 0xA5A5A5A5; 0x00010000;
    0x7FFFFFFF ]

(* Flip codeword bit [b] of a stored (data, check) pair: 0–31 are data
   bits, 32–37 the Hamming check bits, 38 the overall parity bit. *)
let flip_codeword (data, check) b =
  if b < 32 then (data lxor (1 lsl b), check)
  else (data, check lxor (1 lsl (b - 32)))

let test_zero_is_codeword () =
  check_int "encode 0 = 0 (zeroed storage is valid)" 0 (Ecc.encode 0)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip is Clean" ~count:500
    (QCheck.make
       (QCheck.Gen.map (fun i -> i land 0xFFFFFFFF) QCheck.Gen.int))
    (fun w -> Ecc.decode ~data:w ~check:(Ecc.encode w) = Ecc.Clean)

let test_single_flips_correct () =
  List.iter
    (fun w ->
       let check = Ecc.encode w in
       for b = 0 to Ecc.codeword_bits - 1 do
         let data', check' = flip_codeword (w, check) b in
         match Ecc.decode ~data:data' ~check:check' with
         | Ecc.Corrected { data; bit } ->
           check_int
             (Printf.sprintf "word %08x bit %d: corrected data" w b)
             w data;
           check_int
             (Printf.sprintf "word %08x bit %d: identified bit" w b)
             b bit
         | Ecc.Clean ->
           Alcotest.failf "word %08x bit %d: flip decoded Clean" w b
         | Ecc.Uncorrectable ->
           Alcotest.failf "word %08x bit %d: single flip uncorrectable" w b
       done)
    sample_words

let test_double_flips_detected () =
  List.iter
    (fun w ->
       let check = Ecc.encode w in
       for b1 = 0 to Ecc.codeword_bits - 2 do
         for b2 = b1 + 1 to Ecc.codeword_bits - 1 do
           match Ecc.decode ~data:(fst (flip_codeword (flip_codeword (w, check) b1) b2))
                   ~check:(snd (flip_codeword (flip_codeword (w, check) b1) b2))
           with
           | Ecc.Uncorrectable -> ()
           | Ecc.Clean ->
             Alcotest.failf "word %08x bits %d+%d: double flip decoded Clean"
               w b1 b2
           | Ecc.Corrected _ ->
             Alcotest.failf "word %08x bits %d+%d: double flip miscorrected"
               w b1 b2
         done
       done)
    sample_words

(* ------------------------------------------------------------------ *)
(* Storage integration: MRAM data segment and the m-register file      *)

let test_mram_ecc () =
  let t = Mram.create ~ecc:true ~code_words:64 ~data_bytes:256 () in
  check_bool "ecc armed" true (Mram.ecc t);
  let v = 0x12345678 in
  check_bool "store" true (Mram.store_word t ~addr:8 v);
  (* Single flip under the encoder: both read views return the stored
     word; only the checked view reports the repair. *)
  check_bool "corrupt" true (Mram.corrupt_data_bit t ~addr:8 ~bit:7);
  check_int "plain read is the corrected view" v
    (Option.get (Mram.load_word t ~addr:8));
  (match Mram.load_word_checked t ~addr:8 with
   | Some (w, Ecc.Corrected { bit; _ }) ->
     check_int "checked read corrects" v w;
     check_int "identifies the flipped bit" 7 bit
   | Some (_, st) ->
     Alcotest.failf "expected Corrected, got %s"
       (match st with
        | Ecc.Clean -> "Clean"
        | Ecc.Uncorrectable -> "Uncorrectable"
        | Ecc.Corrected _ -> assert false)
   | None -> Alcotest.fail "in-range read returned None");
  (* The plain read did not scrub: the upset is still stored, and a
     second flip makes the word uncorrectable. *)
  check_bool "corrupt again" true (Mram.corrupt_data_bit t ~addr:8 ~bit:19);
  (match Mram.load_word_checked t ~addr:8 with
   | Some (_, Ecc.Uncorrectable) -> ()
   | _ -> Alcotest.fail "double flip not detected");
  (* A store regenerates the check bits. *)
  check_bool "overwrite" true (Mram.store_word t ~addr:8 0xCAFE);
  (match Mram.load_word_checked t ~addr:8 with
   | Some (w, Ecc.Clean) -> check_int "clean after rewrite" 0xCAFE w
   | _ -> Alcotest.fail "rewrite did not regenerate check bits");
  (* Ablation: without ECC the same flip is plainly visible. *)
  let off = Mram.create ~code_words:64 ~data_bytes:256 () in
  check_bool "ecc off" false (Mram.ecc off);
  ignore (Mram.store_word off ~addr:8 v);
  ignore (Mram.corrupt_data_bit off ~addr:8 ~bit:7);
  check_int "ecc-off read sees the flip" (v lxor 0x80)
    (Option.get (Mram.load_word off ~addr:8))

let test_mregs_ecc () =
  let t = Mregs.create ~ecc:true () in
  check_bool "ecc armed" true (Mregs.ecc t);
  let v = 0xBEEF00D in
  Mregs.write t 10 v;
  Mregs.flip_bit t 10 ~bit:3;
  check_int "plain read is the corrected view" v (Mregs.read t 10);
  check_int "dump is the corrected view" v (Mregs.dump t).(10);
  (match Mregs.read_checked t 10 with
   | _, Ecc.Corrected { bit; _ } -> check_int "flipped bit" 3 bit
   | _ -> Alcotest.fail "expected Corrected");
  Mregs.flip_bit t 10 ~bit:30;
  (match Mregs.read_checked t 10 with
   | _, Ecc.Uncorrectable -> ()
   | _ -> Alcotest.fail "double flip not detected");
  Mregs.write t 10 v;
  (match Mregs.read_checked t 10 with
   | w, Ecc.Clean -> check_int "clean after rewrite" v w
   | _ -> Alcotest.fail "rewrite did not regenerate check bits")

(* ------------------------------------------------------------------ *)
(* Pipeline integration: an mroutine consuming MRAM data with Mld      *)

let mld_mcode =
  ".mentry 1, get\n\
   get:\n\
   mld t0, 0(zero)\n\
   mexit\n"

let mld_guest =
  "start:\n\
   li s1, 5\n\
   loop:\n\
   menter 1\n\
   addi s1, s1, -1\n\
   bne s1, zero, loop\n\
   ebreak\n"

let run_mld ~predecode ~ecc ~prepare_mram () =
  let config = { Config.default with Config.predecode; Config.ecc } in
  let sys = System.create ~config () in
  (match System.load_mcode sys mld_mcode with
   | Ok () -> ()
   | Error e -> failwith e);
  (match System.load_program sys mld_guest with
   | Ok _ -> ()
   | Error e -> failwith e);
  let m = sys.System.machine in
  prepare_mram m.Machine.mram;
  let c = Collector.create () in
  Machine.set_probe m (Collector.probe c);
  System.start sys ~pc:0 ();
  let halt = System.run sys ~max_cycles:100_000 () in
  let counts = (Collector.metrics c).Metal_trace.Metrics.event_counts in
  let corrections =
    match List.assoc_opt "ecc_correct" counts with Some n -> n | None -> 0
  in
  (halt, Machine.get_reg m 5 (* t0 *), Stats.copy m.Machine.stats, corrections)

let seed_word = 0x5EC0DE5

let test_mld_timing ~predecode () =
  let seed mram = ignore (Mram.store_word mram ~addr:0 seed_word) in
  let h_off, t0_off, s_off, c_off =
    run_mld ~predecode ~ecc:false ~prepare_mram:seed ()
  and h_on, t0_on, s_on, c_on =
    run_mld ~predecode ~ecc:true ~prepare_mram:seed ()
  in
  (match (h_off, h_on) with
   | Machine.Halt_ebreak _, Machine.Halt_ebreak _ -> ()
   | _ -> Alcotest.fail "mld program did not reach ebreak");
  check_int "same loaded word" t0_off t0_on;
  check_int "loaded the stored word" seed_word t0_on;
  check_int "no corrections without faults (off)" 0 c_off;
  check_int "no corrections without faults (on)" 0 c_on;
  (* The SECDED check costs one cycle per Mld, attributed as a memory
     stall; the 5-iteration loop issues 5 Mlds. *)
  check_int "one check cycle per mld" (s_off.Stats.cycles + 5)
    s_on.Stats.cycles;
  check_int "attributed as memory stalls"
    (s_off.Stats.mem_stall_cycles + 5)
    s_on.Stats.mem_stall_cycles

let test_mld_corrects ~predecode () =
  let prep mram =
    ignore (Mram.store_word mram ~addr:0 seed_word);
    ignore (Mram.corrupt_data_bit mram ~addr:0 ~bit:11)
  in
  let halt, t0, _, corrections =
    run_mld ~predecode ~ecc:true ~prepare_mram:prep ()
  in
  (match halt with
   | Machine.Halt_ebreak _ -> ()
   | h ->
     Alcotest.failf "corrupted run did not reach ebreak: %s"
       (Machine.halted_to_string h));
  check_int "mld consumed the corrected word" seed_word t0;
  (* The upset is never scrubbed, so every one of the 5 Mlds repairs
     it again. *)
  check_int "one correction per mld" 5 corrections

let test_mld_uncorrectable ~predecode () =
  let prep mram =
    ignore (Mram.store_word mram ~addr:0 seed_word);
    ignore (Mram.corrupt_data_bit mram ~addr:0 ~bit:11);
    ignore (Mram.corrupt_data_bit mram ~addr:0 ~bit:23)
  in
  let halt, _, _, _ = run_mld ~predecode ~ecc:true ~prepare_mram:prep () in
  match halt with
  | Machine.Halt_metal_fault { cause = Cause.Ecc_uncorrectable; _ } -> ()
  | h ->
    Alcotest.failf "double flip did not raise ecc-uncorrectable: %s"
      (Machine.halted_to_string h)

(* ------------------------------------------------------------------ *)
(* End-to-end: a Metal-register upset inside an active mroutine is
   corrected before consumption — swept over every injection cycle.   *)

let ping_mcode =
  ".mentry 1, ping\n\
   ping:\n\
   wmr m11, t0\n\
   rmr t0, m10\n\
   addi t0, t0, 1\n\
   wmr m10, t0\n\
   rmr t0, m11\n\
   mexit\n"

let ping_guest =
  "start:\n\
   li s0, 50\n\
   loop:\n\
   menter 1\n\
   addi s0, s0, -1\n\
   bne s0, zero, loop\n\
   ebreak\n"

let prepare_ping (sys : System.t) =
  (match System.load_mcode sys ping_mcode with
   | Ok () -> ()
   | Error e -> failwith e);
  (match System.load_program sys ping_guest with
   | Ok _ -> ()
   | Error e -> failwith e);
  System.start sys ~pc:0 ()

let test_mreg_sweep ~predecode () =
  let ecc_config = { Config.default with Config.predecode; Config.ecc = true }
  and off_config = { Config.default with Config.predecode } in
  let _, _, _, oracle, _ =
    Tutil.run_injected ~config:ecc_config ~fuel:100_000 ~plan:[] prepare_ping
  in
  let cycles = oracle.Inject.Snapshot.stats.Stats.cycles in
  check_bool "oracle halted" true (cycles > 0);
  (* m10 is the live counter: the ping mroutine reads it on every
     iteration, so an upset is either consumed (and must be repaired)
     or overwritten first (masked).  Silent is unreachable. *)
  let plan_at k =
    [ { Inject.trigger = Inject.At_cycle k;
        Inject.fault = Inject.Mreg { m = 10; bit = 13 } } ]
  in
  let corrected_at = ref None in
  for k = 1 to cycles - 1 do
    let verdict, applied, _, _, _ =
      Tutil.run_injected ~config:ecc_config ~fuel:100_000 ~plan:(plan_at k)
        prepare_ping
    in
    check_int (Printf.sprintf "cycle %d: applied" k) 1 applied;
    match verdict with
    | Inject.Masked -> ()
    | Inject.Corrected _ ->
      if !corrected_at = None then corrected_at := Some k
    | Inject.Detected _ ->
      Alcotest.failf "cycle %d: single-bit mreg flip detected as a fault" k
    | Inject.Silent components ->
      Alcotest.failf "cycle %d: silent corruption (%s) despite ECC" k
        (String.concat ", " components)
  done;
  match !corrected_at with
  | None ->
    Alcotest.fail "no injection cycle was corrected — the sweep never hit \
                   the live window"
  | Some k ->
    (* Ablation: the same upset without ECC corrupts silently — the
       E20 gap this layer closes. *)
    (match
       Tutil.run_injected ~config:off_config ~fuel:100_000 ~plan:(plan_at k)
         prepare_ping
     with
     | Inject.Silent _, _, _, _, _ -> ()
     | v, _, _, _, _ ->
       Alcotest.failf
         "cycle %d: expected silent corruption without ECC, got %s" k
         (Inject.verdict_to_string v))

(* ------------------------------------------------------------------ *)
(* Corpus differential: arming ECC on a fault-free run is invisible —
   same architectural results, same timing (the corpus issues no Mld). *)

let mem_size = 64 * 1024
let data_base = 0x1000
let data_words = 64
let base_reg = 28

let gen_reg = QCheck.Gen.int_range 0 15

let gen_instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Instr in
  let gen_alu = oneofl [ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And ] in
  let gen_cond = oneofl [ Beq; Bne; Blt; Bge; Bltu; Bgeu ] in
  let word_off = map (fun i -> 4 * i) (int_range 0 (data_words - 1)) in
  frequency
    [ (4, map3 (fun op (rd, rs1) rs2 -> Op { op; rd; rs1; rs2 }) gen_alu
         (pair gen_reg gen_reg) gen_reg);
      (4, map3 (fun op (rd, rs1) imm -> Op_imm { op; rd; rs1; imm })
         (oneofl [ Add; Xor; Or; And ]) (pair gen_reg gen_reg)
         (int_range (-2048) 2047));
      (3, map2 (fun rd offset ->
           Load { width = Word; unsigned = false; rd; rs1 = base_reg; offset })
         gen_reg word_off);
      (3, map2 (fun rs2 offset ->
           Store { width = Word; rs2; rs1 = base_reg; offset })
         gen_reg word_off);
      (2, map3 (fun cond rs1 rs2 -> Branch { cond; rs1; rs2; offset = 8 })
         gen_cond gen_reg gen_reg);
    ]

let gen_program : Instr.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let* body = list_size (int_range 5 40) gen_instr in
  let* seeds = list_size (return 6) (pair gen_reg (int_range (-100) 1000)) in
  let prologue =
    Instr.Lui { rd = base_reg; imm = data_base lsr 12 }
    :: List.concat_map
         (fun (r, v) ->
            if r = 0 then []
            else [ Instr.Op_imm { op = Instr.Add; rd = r; rs1 = 0; imm = v } ])
         seeds
  in
  return (prologue @ body @ [ Instr.Ebreak ])

let corpus_programs =
  lazy
    (let rand = Random.State.make [| 0x5EED; 300 |] in
     Array.init 300 (fun _ -> QCheck.Gen.generate1 ~rand gen_program))

let image_of instrs =
  let b = Metal_asm.Image.Builder.create () in
  List.iteri
    (fun i instr ->
       match
         Metal_asm.Image.Builder.emit_word b ~addr:(4 * i)
           (Encode.encode_exn instr)
       with
       | Ok () -> ()
       | Error e -> failwith e)
    instrs;
  Metal_asm.Image.Builder.finish b

let run_corpus_program ~predecode ~ecc img =
  let config =
    { Config.default with Config.mem_size; Config.predecode; Config.ecc }
  in
  let m = Machine.create ~config () in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  for i = 0 to data_words - 1 do
    Machine.write_word m
      (data_base + (4 * i))
      (Word.of_int ((i * 0x01234567) + 0x89ABCDEF))
  done;
  Machine.set_pc m 0;
  let halt = Pipeline.run m ~max_cycles:100_000 in
  ( halt,
    Array.init 32 (Machine.get_reg m),
    Array.init data_words (fun i -> Machine.read_word m (data_base + (4 * i))),
    Stats.copy m.Machine.stats )

let test_ecc_off_identity_corpus ~predecode () =
  let progs = Lazy.force corpus_programs in
  let failures = ref [] in
  Array.iteri
    (fun i instrs ->
       let img = image_of instrs in
       if
         run_corpus_program ~predecode ~ecc:false img
         <> run_corpus_program ~predecode ~ecc:true img
       then failures := i :: !failures)
    progs;
  match !failures with
  | [] -> ()
  | fs ->
    Alcotest.failf "%d/300 corpus programs diverge between ecc on/off: %s"
      (List.length fs)
      (String.concat ", " (List.rev_map string_of_int fs))

(* ------------------------------------------------------------------ *)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "ecc"
    [
      ( "codec",
        [ Alcotest.test_case "encode 0 = 0" `Quick test_zero_is_codeword;
          qcheck prop_roundtrip;
          Alcotest.test_case "all 39 single flips correct" `Quick
            test_single_flips_correct;
          Alcotest.test_case "all 741 double flips detected" `Quick
            test_double_flips_detected ] );
      ( "storage",
        [ Alcotest.test_case "mram data segment" `Quick test_mram_ecc;
          Alcotest.test_case "m-register file" `Quick test_mregs_ecc ] );
      ( "pipeline",
        [ Alcotest.test_case "mld check latency (fast)" `Quick
            (test_mld_timing ~predecode:true);
          Alcotest.test_case "mld check latency (slow)" `Quick
            (test_mld_timing ~predecode:false);
          Alcotest.test_case "mld corrects a stored upset (fast)" `Quick
            (test_mld_corrects ~predecode:true);
          Alcotest.test_case "mld corrects a stored upset (slow)" `Quick
            (test_mld_corrects ~predecode:false);
          Alcotest.test_case "double flip faults ecc-uncorrectable (fast)"
            `Quick (test_mld_uncorrectable ~predecode:true);
          Alcotest.test_case "double flip faults ecc-uncorrectable (slow)"
            `Quick (test_mld_uncorrectable ~predecode:false) ] );
      ( "robustness",
        [ Alcotest.test_case "mreg upset corrected at consumption (fast)"
            `Quick (test_mreg_sweep ~predecode:true);
          Alcotest.test_case "mreg upset corrected at consumption (slow)"
            `Quick (test_mreg_sweep ~predecode:false) ] );
      ( "differential",
        [ Alcotest.test_case "300-program corpus, ecc on = off (fast)"
            `Quick (test_ecc_off_identity_corpus ~predecode:true);
          Alcotest.test_case "300-program corpus, ecc on = off (slow)"
            `Quick (test_ecc_off_identity_corpus ~predecode:false) ] );
    ]
