(* metal-run: execute an assembly program on the Metal machine. *)

module Fleet = Metal_fleet.Fleet
module Telemetry = Metal_telemetry.Telemetry

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_os path max_cycles =
  match Metal_kernel.Kernel.boot () with
  | Error e ->
    Printf.eprintf "boot: %s\n" e;
    1
  | Ok k ->
    begin match Metal_kernel.Kernel.spawn k ~source:(read_file path) with
    | Error e ->
      Printf.eprintf "spawn: %s\n" e;
      1
    | Ok _ ->
      let outcome = Metal_kernel.Kernel.run k ~max_cycles in
      let out = Metal_kernel.Kernel.console_output k in
      if out <> "" then Printf.printf "console: %s\n" out;
      List.iter
        (fun p ->
           Printf.printf "pid %d: %s\n" p.Metal_kernel.Process.pid
             (Metal_kernel.Process.state_to_string
                p.Metal_kernel.Process.state))
        k.Metal_kernel.Kernel.procs;
      begin match outcome with
      | Metal_kernel.Kernel.All_done -> 0
      | Metal_kernel.Kernel.Deadlocked ->
        Printf.eprintf "deadlock: every process is blocked in recv\n";
        1
      | Metal_kernel.Kernel.Out_of_cycles ->
        Printf.eprintf "out of cycles\n";
        1
      | Metal_kernel.Kernel.Machine_halted h ->
        Printf.eprintf "machine halted: %s\n"
          (Metal_cpu.Machine.halted_to_string h);
        1
      end
    end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Static verification of --mcode before it reaches MRAM (on by
   default; --no-verify is the escape hatch).  Quiet mode prints
   findings to stderr and refuses the install on errors; --verify
   additionally prints the per-entry WCET report to stdout. *)
let verify_mcode ~config ~report img =
  let r = Metal_mverify.Mverify.verify ~config img in
  if report then print_string (Metal_mverify.Mverify.to_string r)
  else
    List.iter
      (fun f ->
         Printf.eprintf "mverify: %s\n"
           (Metal_mverify.Mverify.finding_to_string f))
      r.Metal_mverify.Mverify.findings;
  if Metal_mverify.Mverify.ok r then Ok r
  else
    Error
      (Printf.sprintf
         "mcode verification failed (%d errors%s); --no-verify forces the \
          install"
         (List.length (Metal_mverify.Mverify.errors r))
         (if report then "" else ", listed above"))

(* Per-entry static WCET bounds out of a verification report — what
   the runtime wcet watchdog checks measured latencies against. *)
let wcet_bounds r =
  List.filter_map
    (fun (e : Metal_mverify.Mverify.entry_report) ->
       Option.map (fun w -> (e.Metal_mverify.Mverify.entry, w)) e.wcet)
    r.Metal_mverify.Mverify.entries

(* --telemetry-out FILE picks its format by extension: .csv gets the
   spreadsheet view, anything else newline-delimited JSON. *)
let write_telemetry ~path series =
  let data =
    if Filename.check_suffix path ".csv" then Telemetry.Series.to_csv series
    else Telemetry.Series.to_ndjson series
  in
  write_file path data

let run_bare path mcode_path origin max_cycles palcode ecc no_blocks verify
    report trace regs trace_out metrics_out profile_out telemetry_out
    telemetry_window watch =
  let base = if palcode then Metal_cpu.Config.palcode else Metal_cpu.Config.default in
  let config =
    { base with
      Metal_cpu.Config.trace;
      ecc;
      blockcache = base.Metal_cpu.Config.blockcache && not no_blocks }
  in
  let sys = Metal_core.System.create ~config () in
  let collector =
    if trace_out <> None || metrics_out <> None then
      Some (Metal_trace.Collector.create ())
    else None
  and profiler =
    if profile_out <> None then
      Some
        (Metal_profile.Profile.create
           ~guest_words:(min 65536 (config.Metal_cpu.Config.mem_size / 4))
           ~mram_words:config.Metal_cpu.Config.mram_code_words ())
    else None
  (* Created after mcode verification (the wcet rule needs the static
     bounds from the report), hence the ref. *)
  and telemetry = ref None in
  let install_probes () =
    (* The machine has one probe slot; fan out when several exporters
       are requested so the flags compose instead of last-wins. *)
    let probes =
      List.filter_map Fun.id
        [
          Option.map Metal_trace.Collector.probe collector;
          Option.map Metal_profile.Profile.probe profiler;
          Option.map Telemetry.probe !telemetry;
        ]
    in
    match probes with
    | [] -> ()
    | [ p ] -> Metal_cpu.Machine.set_probe sys.Metal_core.System.machine p
    | ps ->
      Metal_cpu.Machine.set_probe sys.Metal_core.System.machine
        (fun cycle kind a b -> List.iter (fun p -> p cycle kind a b) ps)
  in
  let ( let* ) = Result.bind in
  let result =
    let* mimg, bounds =
      match mcode_path with
      | None -> Ok (None, [])
      | Some p ->
        (match Metal_asm.Asm.assemble (read_file p) with
         | Error e -> Error (Metal_asm.Asm.error_to_string e)
         | Ok mimg ->
           let* bounds =
             if verify then
               Result.map wcet_bounds (verify_mcode ~config ~report mimg)
             else Ok []
           in
           (match
              Metal_cpu.Machine.load_mcode sys.Metal_core.System.machine mimg
            with
            | Ok () -> Ok (Some mimg, bounds)
            | Error e -> Error e))
    in
    if telemetry_out <> None || watch <> [] then
      telemetry :=
        Some
          (Telemetry.create ~window_cycles:telemetry_window ~rules:watch
             ~wcet_bounds:bounds ());
    install_probes ();
    let* img = Metal_core.System.load_program sys ~origin (read_file path) in
    let pc =
      match Metal_asm.Image.find_symbol img "start" with
      | Some a -> a
      | None ->
        (match Metal_asm.Image.bounds img with
         | Some (lo, _) -> lo
         | None -> 0)
    in
    Metal_core.System.start sys ~pc ();
    (match Metal_core.System.run sys ~max_cycles () with
     | Metal_cpu.Machine.Halt_out_of_cycles { budget; _ } ->
       Error
         (Metal_cpu.Pipeline.timeout_diagnostics
            sys.Metal_core.System.machine ~budget)
     | halt -> Ok (halt, img, mimg))
  in
  match result with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok (halt, img, mimg) ->
    Printf.printf "halt: %s\n" (Metal_cpu.Machine.halted_to_string halt);
    let out = Metal_core.System.console_output sys in
    if out <> "" then Printf.printf "console: %s\n" out;
    if regs then begin
      print_endline "registers:";
      for r = 0 to 31 do
        let v = Metal_cpu.Machine.get_reg sys.Metal_core.System.machine r in
        if v <> 0 then
          Printf.printf "  %-5s %s (%d)\n" (Reg.to_string r) (Word.to_hex v)
            (Word.to_signed v)
      done
    end;
    Format.printf "stats: %a@."
      Metal_cpu.Stats.pp sys.Metal_core.System.machine.Metal_cpu.Machine.stats;
    (* Host-side stepper cache counters (predecode + block cache) —
       simulator performance, not architecture, so they live outside
       Stats.  Zero entries are noise; print only what moved. *)
    (match
       List.filter (fun (_, v) -> v <> 0)
         (Metal_cpu.Machine.cache_counters sys.Metal_core.System.machine)
     with
     | [] -> ()
     | live ->
       print_string "caches:";
       List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) live;
       print_newline ());
    if trace then begin
      print_endline "trace (last 40 events):";
      List.iter
        (fun l -> print_endline ("  " ^ l))
        (Metal_cpu.Machine.trace_log sys.Metal_core.System.machine ~max:40)
    end;
    (match collector with
     | None -> ()
     | Some c ->
       (match trace_out with
        | Some f ->
          Metal_trace.Chrome.write ~path:f (Metal_trace.Collector.ring c);
          Printf.printf "trace: %s\n" f
        | None -> ());
       (match metrics_out with
        | Some f ->
          write_file f
            (Metal_trace.Metrics.to_json
               ~caches:
                 (Metal_cpu.Machine.cache_counters
                    sys.Metal_core.System.machine)
               (Metal_trace.Collector.metrics c));
          Printf.printf "metrics: %s\n" f
        | None -> ());
       Format.printf "%a@." Metal_trace.Metrics.pp
         (Metal_trace.Collector.metrics c));
    (match (profiler, profile_out) with
     | Some p, Some f ->
       let symtab =
         Metal_profile.Profile.Symtab.of_images ~guest:img ?mcode:mimg ()
       in
       let r =
         Metal_profile.Profile.report ~symtab
           ~upto:
             sys.Metal_core.System.machine.Metal_cpu.Machine.stats
               .Metal_cpu.Stats.cycles
           p
       in
       write_file f (Metal_profile.Profile.Report.to_json r);
       write_file (f ^ ".folded") (Metal_profile.Profile.Report.to_folded r);
       Printf.printf "profile: %s (flamegraph: %s.folded)\n" f f;
       Format.printf "%a@."
         (fun fmt r -> Metal_profile.Profile.Report.pp fmt r)
         r
     | _ -> ());
    let watchdog_faulted = ref false in
    (match !telemetry with
     | None -> ()
     | Some t ->
       let m = sys.Metal_core.System.machine in
       let stats = m.Metal_cpu.Machine.stats in
       let series =
         Telemetry.Series.annotate (Telemetry.series t)
           ~machine_cycles:stats.Metal_cpu.Stats.cycles
           ~accounted_cycles:
             (Metal_cpu.Stats.accounted_cycles stats
                ~pending_stall:m.Metal_cpu.Machine.stall_cycles)
       in
       (match telemetry_out with
        | Some f ->
          write_telemetry ~path:f series;
          Printf.printf "telemetry: %s\n" f
        | None -> ());
       Format.printf "%a@." Telemetry.Series.pp series;
       let alarms = Telemetry.alarms t in
       List.iter
         (fun a -> print_endline (Telemetry.Watchdog.alarm_to_string a))
         alarms;
       if watch <> [] then begin
         let faults = List.length (Telemetry.fault_alarms alarms) in
         if alarms = [] then
           Printf.printf "watchdog: ok (%d rules)\n" (List.length watch)
         else
           Printf.printf "watchdog: %d alarms (%d fault, %d warn)\n"
             (List.length alarms) faults
             (List.length alarms - faults);
         if faults > 0 then watchdog_faulted := true
       end);
    if !watchdog_faulted then 1 else 0

(* Batch mode: several programs run as fleet jobs across domains.
   One line per program; a failing job never takes down the batch.
   Observability flags are threaded through: [--regs] dumps per-job
   registers, [--trace-out F] writes one Chrome trace per job
   (F.<index>), [--metrics-out F] writes the fleet-merged metrics. *)
let run_batch paths mcode_path origin max_cycles palcode ecc no_blocks verify
    report regs trace_out metrics_out profile_out telemetry_out
    telemetry_window watch jobs =
  let base =
    if palcode then Metal_cpu.Config.palcode else Metal_cpu.Config.default
  in
  let base =
    { base with
      Metal_cpu.Config.ecc;
      blockcache = base.Metal_cpu.Config.blockcache && not no_blocks }
  in
  let mcode = Option.map read_file mcode_path in
  (* Verify the shared mcode once up front, not once per job; the
     report's WCET bounds feed every job's wcet watchdog. *)
  let precheck =
    match mcode with
    | Some src when verify ->
      (match Metal_asm.Asm.assemble src with
       | Error e -> Error (Metal_asm.Asm.error_to_string e)
       | Ok img ->
         Result.map wcet_bounds (verify_mcode ~config:base ~report img))
    | _ -> Ok []
  in
  match precheck with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok bounds ->
  let collect = trace_out <> None || metrics_out <> None in
  let profile = profile_out <> None in
  let telemetry = telemetry_out <> None in
  let batch =
    Array.of_list
      (List.map
         (fun path ->
            Fleet.job ~label:path ~config:base ~fuel:max_cycles ~collect
              ~profile ~telemetry ~telemetry_window ~watch
              ~wcet_bounds:bounds
              (Fleet.Asm { src = read_file path; origin; mcode }))
         paths)
  in
  let domains =
    match jobs with Some j -> j | None -> Fleet.default_domains ()
  in
  let outcomes = Fleet.run ~domains batch in
  let failures = ref 0 in
  let fault_alarms = ref 0 in
  Array.iter
    (fun o ->
       (match o.Fleet.result with
        | Ok ok ->
          Printf.printf "%-32s %-40s %10d cycles %10d instrs\n"
            o.Fleet.job.Fleet.label
            (Metal_cpu.Machine.halted_to_string ok.Fleet.halt)
            ok.Fleet.stats.Metal_cpu.Stats.cycles
            ok.Fleet.stats.Metal_cpu.Stats.instructions;
          if ok.Fleet.console <> "" then
            Printf.printf "%-32s console: %s\n" "" ok.Fleet.console;
          if regs then
            for r = 1 to 31 do
              let v = ok.Fleet.regs.(r) in
              if v <> 0 then
                Printf.printf "%-32s   %-5s %s (%d)\n" "" (Reg.to_string r)
                  (Word.to_hex v) (Word.to_signed v)
            done;
          (match (trace_out, ok.Fleet.events) with
           | Some f, Some ring ->
             let per_job = Printf.sprintf "%s.%d" f o.Fleet.index in
             Metal_trace.Chrome.write ~path:per_job ring;
             Printf.printf "%-32s trace: %s\n" "" per_job
           | _ -> ());
          (match (profile_out, ok.Fleet.profile) with
           | Some f, Some r ->
             let per_job = Printf.sprintf "%s.%d" f o.Fleet.index in
             write_file per_job (Metal_profile.Profile.Report.to_json r);
             Printf.printf "%-32s profile: %s\n" "" per_job
           | _ -> ());
          (match (telemetry_out, ok.Fleet.telemetry) with
           | Some f, Some s ->
             let per_job = Printf.sprintf "%s.%d" f o.Fleet.index in
             write_telemetry ~path:per_job s;
             Printf.printf "%-32s telemetry: %s\n" "" per_job
           | _ -> ());
          List.iter
            (fun a ->
               Printf.printf "%-32s %s\n" ""
                 (Telemetry.Watchdog.alarm_to_string a))
            ok.Fleet.alarms;
          fault_alarms :=
            !fault_alarms
            + List.length (Telemetry.fault_alarms ok.Fleet.alarms)
        | Error e ->
          incr failures;
          Printf.printf "%-32s FAILED: %s\n" o.Fleet.job.Fleet.label
            (Fleet.fail_to_string e)))
    outcomes;
  (match metrics_out with
   | Some f ->
     write_file f (Metal_trace.Metrics.to_json (Fleet.merge_metrics outcomes));
     Printf.printf "metrics: %s\n" f
   | None -> ());
  (match profile_out with
   | Some f ->
     let merged = Fleet.merge_profiles outcomes in
     write_file f (Metal_profile.Profile.Report.to_json merged);
     write_file (f ^ ".folded")
       (Metal_profile.Profile.Report.to_folded merged);
     Printf.printf "profile: %s (merged)\n" f
   | None -> ());
  (match telemetry_out with
   | Some f ->
     write_telemetry ~path:f (Fleet.merge_telemetry outcomes);
     Printf.printf "telemetry: %s (merged)\n" f
   | None -> ());
  if watch <> [] then begin
    if !fault_alarms = 0 then
      Printf.printf "watchdog: ok (%d rules)\n" (List.length watch)
    else Printf.printf "watchdog: %d fault alarms\n" !fault_alarms
  end;
  Printf.printf "%d/%d ok (%d domains)\n"
    (Array.length outcomes - !failures)
    (Array.length outcomes) domains;
  if !failures = 0 && !fault_alarms = 0 then 0 else 1

(* Fault-injection campaigns: each program becomes a campaign workload
   (oracle run + [runs] seeded injected runs on the fleet), with a
   human verdict summary per program and optional verdict JSON. *)
let run_inject paths mcode_path origin max_cycles palcode ecc no_blocks verify
    report spec_str inject_out jobs =
  match Metal_inject.Inject.spec_of_string spec_str with
  | Error e ->
    Printf.eprintf "metal-run: --inject %s\n" e;
    1
  | Ok spec ->
    let base =
      if palcode then Metal_cpu.Config.palcode else Metal_cpu.Config.default
    in
    let base =
      { base with
        Metal_cpu.Config.ecc;
        blockcache = base.Metal_cpu.Config.blockcache && not no_blocks }
    in
    let mcode = Option.map read_file mcode_path in
    (* Verify the shared mcode once up front, not once per run. *)
    let precheck =
      match mcode with
      | Some src when verify ->
        (match Metal_asm.Asm.assemble src with
         | Error e -> Error (Metal_asm.Asm.error_to_string e)
         | Ok img ->
           Result.map (fun _ -> ()) (verify_mcode ~config:base ~report img))
      | _ -> Ok ()
    in
    (match precheck with
     | Error e ->
       Printf.eprintf "error: %s\n" e;
       1
     | Ok () ->
       let prepare src sys =
         (match mcode with
          | None -> ()
          | Some msrc ->
            (match Metal_core.System.load_mcode sys msrc with
             | Ok () -> ()
             | Error e -> failwith e));
         match Metal_core.System.load_program sys ~origin src with
         | Error e -> failwith e
         | Ok img ->
           let pc =
             match Metal_asm.Image.find_symbol img "start" with
             | Some a -> a
             | None ->
               (match Metal_asm.Image.bounds img with
                | Some (lo, _) -> lo
                | None -> 0)
           in
           Metal_core.System.start sys ~pc ()
       in
       let domains = jobs in
       let failures = ref 0 in
       List.iteri
         (fun i path ->
            let w =
              Metal_inject.Inject.workload ~config:base ~fuel:max_cycles
                ~label:path
                (prepare (read_file path))
            in
            match Metal_inject.Inject.run_campaign ?domains ~spec w with
            | Error e ->
              incr failures;
              Printf.printf "%s: FAILED: %s\n" path e
            | Ok c ->
              Format.printf "%a" Metal_inject.Inject.pp c;
              Format.print_flush ();
              (match inject_out with
               | None -> ()
               | Some f ->
                 let f =
                   if List.length paths = 1 then f
                   else Printf.sprintf "%s.%d" f i
                 in
                 write_file f (Metal_inject.Inject.to_json c);
                 Printf.printf "verdicts: %s\n" f))
         paths;
       if !failures = 0 then 0 else 1)

let run paths mcode_path origin max_cycles palcode ecc no_blocks report
    no_verify trace regs os jobs trace_out metrics_out profile_out inject
    inject_out telemetry_out telemetry_window watch =
  let verify = not no_verify in
  let watch_rules =
    match watch with
    | None -> Ok []
    | Some s -> Telemetry.Watchdog.rules_of_string s
  in
  match paths with
  | [] ->
    prerr_endline "metal-run: no program given";
    1
  | _ when (match watch_rules with Error _ -> true | Ok _ -> false) ->
    (match watch_rules with
     | Error e -> Printf.eprintf "metal-run: --watch %s\n" e
     | Ok _ -> ());
    1
  | _ when telemetry_window <= 0 ->
    Printf.eprintf
      "metal-run: --telemetry-window %d: the window size must be a \
       positive cycle count\n"
      telemetry_window;
    1
  | _
    when (match watch_rules with
          | Ok rules -> Telemetry.Watchdog.needs_wcet rules
          | Error _ -> false)
         && (mcode_path = None || no_verify) ->
    prerr_endline
      "metal-run: --watch wcet checks measured mroutine latencies \
       against the static verifier's per-entry bounds, so it needs \
       --mcode with verification on (drop --no-verify)";
    1
  | _ when (match jobs with Some j -> j <= 0 | None -> false) ->
    Printf.eprintf
      "metal-run: --jobs %d: the domain count must be positive (omit \
       --jobs to let the fleet pick one domain per core; requests above \
       the core count are clamped)\n"
      (Option.get jobs);
    1
  | _ when report && no_verify ->
    prerr_endline "metal-run: --verify and --no-verify are contradictory";
    1
  | _ when ecc && os ->
    prerr_endline
      "metal-run: --ecc configures the bare machine's MRAM/m-register \
       SECDED layer; the mini-kernel owns its own machine config, so it \
       does not combine with --os";
    1
  | _ when os && mcode_path <> None ->
    prerr_endline "metal-run: --os installs its own mcode (drop --mcode)";
    1
  | _ when inject <> None && os ->
    prerr_endline
      "metal-run: --inject drives the bare machine (campaigns need the \
       fault-free oracle); it does not combine with --os";
    1
  | _
    when inject <> None
         && (trace || regs || trace_out <> None || metrics_out <> None
             || profile_out <> None || telemetry_out <> None
             || watch <> None) ->
    prerr_endline
      "metal-run: --inject owns the probe and the run loop; it does not \
       combine with --trace/--regs/--trace-out/--metrics-out/--profile-out/\
       --telemetry-out/--watch (use --inject-out FILE for the verdict JSON)";
    1
  | _ when inject = None && inject_out <> None ->
    prerr_endline "metal-run: --inject-out requires --inject";
    1
  | _
    when os
         && (trace || regs || trace_out <> None || metrics_out <> None
             || profile_out <> None || telemetry_out <> None
             || watch <> None) ->
    prerr_endline
      "metal-run: --os does not support --trace/--regs/--trace-out/\
       --metrics-out/--profile-out/--telemetry-out/--watch (the kernel \
       owns the machine)";
    1
  | paths when inject <> None ->
    run_inject paths mcode_path origin max_cycles palcode ecc no_blocks verify
      report (Option.get inject) inject_out jobs
  | [ path ] when jobs = None ->
    if os then run_os path max_cycles
    else
      run_bare path mcode_path origin max_cycles palcode ecc no_blocks verify
        report trace regs trace_out metrics_out profile_out telemetry_out
        telemetry_window
        (Result.value ~default:[] watch_rules)
  | paths ->
    if os then begin
      prerr_endline "metal-run: --os does not combine with batch mode";
      1
    end
    else if trace then begin
      prerr_endline
        "metal-run: --trace is single-program only; use --trace-out FILE \
         in batch mode (one Chrome trace per job, FILE.<index>)";
      1
    end
    else
      run_batch paths mcode_path origin max_cycles palcode ecc no_blocks
        verify report regs trace_out metrics_out profile_out telemetry_out
        telemetry_window
        (Result.value ~default:[] watch_rules)
        jobs

open Cmdliner

let paths =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Program(s) to run (assembly source).  With several \
               files, or with $(b,--jobs), the programs run as a batch \
               on the parallel simulation fleet.")

let mcode =
  Arg.(value & opt (some file) None & info [ "mcode" ] ~docv:"FILE"
         ~doc:"mroutine source to load into MRAM first.")

let origin =
  Arg.(value & opt int 0 & info [ "origin" ] ~docv:"ADDR"
         ~doc:"Load/assembly origin.")

let max_cycles =
  Arg.(value & opt int 10_000_000 & info [ "max-cycles" ] ~docv:"N"
         ~doc:"Cycle budget.")

let palcode =
  Arg.(value & flag & info [ "palcode" ]
         ~doc:"Run in the PALcode-like configuration (trap-style \
               transitions, mroutines in main memory).")

let ecc =
  Arg.(value & flag & info [ "ecc" ]
         ~doc:"Arm the SECDED ECC layer on the MRAM data segment and \
               the Metal register file: single-bit upsets are \
               corrected at consumption (emitting an ecc_correct \
               event; MRAM data loads pay one extra check cycle), \
               double-bit upsets raise an ecc-uncorrectable Metal \
               fault.  Off by default; without faults an ECC run is \
               architecturally identical to a plain one.")

let no_blocks =
  Arg.(value & flag & info [ "no-blocks" ]
         ~doc:"Disable the basic-block translation cache and run the \
               per-cycle fast stepper instead.  The block stepper is \
               bit-identical in results (it only changes simulator \
               throughput), so this is an escape hatch for debugging \
               the simulator itself and for timing comparisons.")

let verify_report =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"Print the mcode verifier's full report (per-entry WCET \
               bounds, interrupt-latency bound) for $(b,--mcode).  \
               Verification itself is always on unless \
               $(b,--no-verify): the report flag only controls the \
               output.")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ]
         ~doc:"Skip static verification of $(b,--mcode) (CFG safety \
               checks and WCET bounds; on by default, and an mcode \
               image with verification errors refuses to install).")

let trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Record and print a \
                                             retirement trace.")

let regs =
  Arg.(value & flag & info [ "regs" ] ~doc:"Dump non-zero registers.")

let os =
  Arg.(value & flag & info [ "os" ]
         ~doc:"Run the program as a user process on the Metal \
               mini-kernel (syscalls via menter 0) instead of on the \
               bare machine.")

let jobs =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Batch the given programs over $(docv) simulation \
               domains on the fleet runner ($(docv) must be positive; \
               omitted = single-program mode for one file, else one \
               domain per core; requests above the core count are \
               clamped).  Per-program results are independent of \
               $(docv).")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON of the run to $(docv) \
               (load it in chrome://tracing or Perfetto).  In batch \
               mode each job writes $(docv).<index>.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write flat metrics JSON (mode split, event counts, \
               stall attribution, per-mroutine latencies) to $(docv).  \
               In batch mode the per-job metrics are merged.")

let profile_out =
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE"
         ~doc:"Write a cycle-exact profile JSON (per-PC histograms, \
               call-graph stacks, symbolized) to $(docv) and a \
               folded-stack flamegraph to $(docv).folded.  In batch \
               mode each job writes $(docv).<index> and $(docv) gets \
               the fleet-merged profile.  Composes with \
               $(b,--trace-out)/$(b,--metrics-out).")

let inject =
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC"
         ~doc:"Run a deterministic fault-injection campaign instead of a \
               plain run: a fault-free oracle plus seeded injected runs \
               of the program, each classified masked / detected / \
               silent-corruption against the oracle.  $(docv) is \
               comma-separated $(b,seed:N), $(b,runs:N), \
               $(b,classes:NAME+NAME), $(b,integrity), \
               $(b,no-integrity), $(b,user-only) over the defaults \
               (seed 1, 16 runs, every class, integrity on).  Verdicts \
               are reproducible from the spec alone, independent of \
               $(b,--jobs).")

let inject_out =
  Arg.(value & opt (some string) None & info [ "inject-out" ] ~docv:"FILE"
         ~doc:"Write the campaign verdict JSON (schema metal-inject-v1) \
               to $(docv); with several programs each campaign writes \
               $(docv).<index>.  Requires $(b,--inject).")

let telemetry_out =
  Arg.(value & opt (some string) None & info [ "telemetry-out" ] ~docv:"FILE"
         ~doc:"Write the windowed telemetry time-series (schema \
               metal-telemetry-v1: per-window IPC, stall shares, mode \
               residency, mroutine latencies, ECC corrections) to \
               $(docv) — newline-delimited JSON, or CSV when $(docv) \
               ends in .csv.  In batch mode each job writes \
               $(docv).<index> and $(docv) gets the fleet-merged \
               series.  Composes with the other exporters.")

let telemetry_window =
  Arg.(value & opt int Metal_telemetry.Telemetry.default_window
       & info [ "telemetry-window" ] ~docv:"N"
           ~doc:"Telemetry window size in pipeline cycles (default \
                 1024).")

let watch =
  Arg.(value & opt (some string) None & info [ "watch" ] ~docv:"SPEC"
         ~doc:"Arm runtime invariant watchdogs over the telemetry \
               windows: comma-separated rules among $(b,wcet) (every \
               measured mroutine latency must stay within the static \
               verifier's per-entry bound; needs $(b,--mcode)), \
               $(b,ipc_floor:R), $(b,stall_share:CAUSE>P), \
               $(b,ecc_storm:N), $(b,mode_residency:MODE>P); any rule \
               takes an optional $(b,:warn)/$(b,:fault) suffix (wcet \
               defaults to fault, the rest to warn).  Fault alarms \
               make the run exit non-zero.")

let cmd =
  Cmd.v
    (Cmd.info "metal-run" ~doc:"Run a program on the Metal processor")
    Term.(const run $ paths $ mcode $ origin $ max_cycles $ palcode $ ecc
          $ no_blocks $ verify_report $ no_verify $ trace $ regs $ os $ jobs
          $ trace_out $ metrics_out $ profile_out $ inject $ inject_out
          $ telemetry_out $ telemetry_window $ watch)

let () = exit (Cmd.eval' cmd)
