(* metal-run: execute an assembly program on the Metal machine. *)

module Fleet = Metal_fleet.Fleet

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_os path max_cycles =
  match Metal_kernel.Kernel.boot () with
  | Error e ->
    Printf.eprintf "boot: %s\n" e;
    1
  | Ok k ->
    begin match Metal_kernel.Kernel.spawn k ~source:(read_file path) with
    | Error e ->
      Printf.eprintf "spawn: %s\n" e;
      1
    | Ok _ ->
      let outcome = Metal_kernel.Kernel.run k ~max_cycles in
      let out = Metal_kernel.Kernel.console_output k in
      if out <> "" then Printf.printf "console: %s\n" out;
      List.iter
        (fun p ->
           Printf.printf "pid %d: %s\n" p.Metal_kernel.Process.pid
             (Metal_kernel.Process.state_to_string
                p.Metal_kernel.Process.state))
        k.Metal_kernel.Kernel.procs;
      begin match outcome with
      | Metal_kernel.Kernel.All_done -> 0
      | Metal_kernel.Kernel.Deadlocked ->
        Printf.eprintf "deadlock: every process is blocked in recv\n";
        1
      | Metal_kernel.Kernel.Out_of_cycles ->
        Printf.eprintf "out of cycles\n";
        1
      | Metal_kernel.Kernel.Machine_halted h ->
        Printf.eprintf "machine halted: %s\n"
          (Metal_cpu.Machine.halted_to_string h);
        1
      end
    end

let run_bare path mcode_path origin max_cycles palcode trace regs =
  let base = if palcode then Metal_cpu.Config.palcode else Metal_cpu.Config.default in
  let config = { base with Metal_cpu.Config.trace } in
  let sys = Metal_core.System.create ~config () in
  let ( let* ) = Result.bind in
  let result =
    let* () =
      match mcode_path with
      | None -> Ok ()
      | Some p -> Metal_core.System.load_mcode sys (read_file p)
    in
    Metal_core.System.run_program sys ~origin ~max_cycles (read_file path)
  in
  match result with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok halt ->
    Printf.printf "halt: %s\n" (Metal_cpu.Machine.halted_to_string halt);
    let out = Metal_core.System.console_output sys in
    if out <> "" then Printf.printf "console: %s\n" out;
    if regs then begin
      print_endline "registers:";
      for r = 0 to 31 do
        let v = Metal_cpu.Machine.get_reg sys.Metal_core.System.machine r in
        if v <> 0 then
          Printf.printf "  %-5s %s (%d)\n" (Reg.to_string r) (Word.to_hex v)
            (Word.to_signed v)
      done
    end;
    Format.printf "stats: %a@."
      Metal_cpu.Stats.pp sys.Metal_core.System.machine.Metal_cpu.Machine.stats;
    if trace then begin
      print_endline "trace (last 40 events):";
      List.iter
        (fun l -> print_endline ("  " ^ l))
        (Metal_cpu.Machine.trace_log sys.Metal_core.System.machine ~max:40)
    end;
    0

(* Batch mode: several programs run as fleet jobs across domains.
   One line per program; a failing job never takes down the batch. *)
let run_batch paths mcode_path origin max_cycles palcode jobs =
  let base =
    if palcode then Metal_cpu.Config.palcode else Metal_cpu.Config.default
  in
  let mcode = Option.map read_file mcode_path in
  let batch =
    Array.of_list
      (List.map
         (fun path ->
            Fleet.job ~label:path ~config:base ~fuel:max_cycles
              (Fleet.Asm { src = read_file path; origin; mcode }))
         paths)
  in
  let domains = if jobs > 0 then jobs else Fleet.default_domains () in
  let outcomes = Fleet.run ~domains batch in
  let failures = ref 0 in
  Array.iter
    (fun o ->
       (match o.Fleet.result with
        | Ok ok ->
          Printf.printf "%-32s %-40s %10d cycles %10d instrs\n"
            o.Fleet.job.Fleet.label
            (Metal_cpu.Machine.halted_to_string ok.Fleet.halt)
            ok.Fleet.stats.Metal_cpu.Stats.cycles
            ok.Fleet.stats.Metal_cpu.Stats.instructions;
          if ok.Fleet.console <> "" then
            Printf.printf "%-32s console: %s\n" "" ok.Fleet.console
        | Error e ->
          incr failures;
          Printf.printf "%-32s FAILED: %s\n" o.Fleet.job.Fleet.label
            (Fleet.fail_to_string e)))
    outcomes;
  Printf.printf "%d/%d ok (%d domains)\n"
    (Array.length outcomes - !failures)
    (Array.length outcomes) domains;
  if !failures = 0 then 0 else 1

let run paths mcode_path origin max_cycles palcode trace regs os jobs =
  match paths with
  | [] ->
    prerr_endline "metal-run: no program given";
    1
  | [ path ] when jobs = 0 ->
    if os then run_os path max_cycles
    else run_bare path mcode_path origin max_cycles palcode trace regs
  | paths ->
    if os then begin
      prerr_endline "metal-run: --os does not combine with batch mode";
      1
    end
    else run_batch paths mcode_path origin max_cycles palcode jobs

open Cmdliner

let paths =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Program(s) to run (assembly source).  With several \
               files, or with $(b,--jobs), the programs run as a batch \
               on the parallel simulation fleet.")

let mcode =
  Arg.(value & opt (some file) None & info [ "mcode" ] ~docv:"FILE"
         ~doc:"mroutine source to load into MRAM first.")

let origin =
  Arg.(value & opt int 0 & info [ "origin" ] ~docv:"ADDR"
         ~doc:"Load/assembly origin.")

let max_cycles =
  Arg.(value & opt int 10_000_000 & info [ "max-cycles" ] ~docv:"N"
         ~doc:"Cycle budget.")

let palcode =
  Arg.(value & flag & info [ "palcode" ]
         ~doc:"Run in the PALcode-like configuration (trap-style \
               transitions, mroutines in main memory).")

let trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Record and print a \
                                             retirement trace.")

let regs =
  Arg.(value & flag & info [ "regs" ] ~doc:"Dump non-zero registers.")

let os =
  Arg.(value & flag & info [ "os" ]
         ~doc:"Run the program as a user process on the Metal \
               mini-kernel (syscalls via menter 0) instead of on the \
               bare machine.")

let jobs =
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Batch the given programs over $(docv) simulation \
               domains on the fleet runner (0 = single-program mode \
               for one file, else one domain per core, capped at 8).  \
               Per-program results are independent of $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "metal-run" ~doc:"Run a program on the Metal processor")
    Term.(const run $ paths $ mcode $ origin $ max_cycles $ palcode $ trace
          $ regs $ os $ jobs)

let () = exit (Cmd.eval' cmd)
