(* metal-synth: hardware resource estimates (the paper's Table 2). *)

let run breakdown mram_code mram_data tlb_entries ecc =
  let config =
    {
      Metal_synth.Netlist.prototype with
      Metal_synth.Netlist.mram_code_bytes = mram_code;
      mram_data_bytes = mram_data;
      tlb_entries;
      ecc;
    }
  in
  let t = Metal_synth.Report.table2 ~config () in
  print_string (Metal_synth.Report.to_string t);
  if ecc then begin
    print_newline ();
    print_string
      (Metal_synth.Report.ecc_to_string
         (Metal_synth.Report.ecc_table ~config ()))
  end;
  if breakdown then begin
    print_newline ();
    print_string (Metal_synth.Report.breakdown ~config ())
  end;
  0

open Cmdliner

let breakdown =
  Arg.(value & flag & info [ "b"; "breakdown" ]
         ~doc:"Print the per-component cost breakdown.")

let mram_code =
  Arg.(value & opt int Metal_synth.Netlist.prototype.Metal_synth.Netlist.mram_code_bytes
       & info [ "mram-code" ] ~docv:"BYTES" ~doc:"MRAM code segment size.")

let mram_data =
  Arg.(value & opt int Metal_synth.Netlist.prototype.Metal_synth.Netlist.mram_data_bytes
       & info [ "mram-data" ] ~docv:"BYTES" ~doc:"MRAM data segment size.")

let tlb_entries =
  Arg.(value & opt int Metal_synth.Netlist.prototype.Metal_synth.Netlist.tlb_entries
       & info [ "tlb" ] ~docv:"N" ~doc:"TLB entries.")

let ecc =
  Arg.(value & flag
       & info [ "ecc" ]
           ~doc:
             "Include the SECDED ECC layer (MRAM data + m-register \
              file) in the Metal netlist and print its per-structure \
              area/latency delta.")

let cmd =
  Cmd.v
    (Cmd.info "metal-synth"
       ~doc:"Estimate hardware resources with and without Metal")
    Term.(const run $ breakdown $ mram_code $ mram_data $ tlb_entries $ ecc)

let () = exit (Cmd.eval' cmd)
